package history

import (
	"fmt"
	"math/rand"
	"testing"
)

// The functions under test here were rewritten for the checker hot path
// (linear-scan dedup, bulk extraction, span-derived completion); each is
// pinned against its straightforward per-item counterpart on a corpus of
// random event sequences. The corpus is generated locally (internal/gen
// depends on this package, so it cannot supply it) and deliberately
// includes pending invocations, interleavings, aborts in place of
// responses, and transactions left in every phase — the structures the
// rewritten scans must classify.
func hotCorpus(t *testing.T) []History {
	t.Helper()
	var out []History
	objs := []ObjID{"x", "y", "z"}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h History
		type st struct{ phase int } // 0 idle, 1 op-pending, 2 tryC'd, 3 done
		txst := make([]st, 1+rng.Intn(6)+2)
		for ev := 0; ev < 8+rng.Intn(24); ev++ {
			tx := TxID(1 + rng.Intn(len(txst)-1))
			s := &txst[tx]
			switch s.phase {
			case 0:
				switch rng.Intn(4) {
				case 0, 1:
					ob := objs[rng.Intn(len(objs))]
					if rng.Intn(2) == 0 {
						h = append(h, Inv(tx, ob, "write", rng.Intn(5)))
					} else {
						h = append(h, Inv(tx, ob, "read", nil))
					}
					s.phase = 1
				case 2:
					h = append(h, TryC(tx))
					s.phase = 2
				case 3:
					// leave idle (possibly live forever)
				}
			case 1:
				switch rng.Intn(4) {
				case 0, 1:
					inv := h[len(h)-1] // not necessarily this tx; find it
					for i := len(h) - 1; i >= 0; i-- {
						if h[i].Tx == tx && h[i].Kind == KindInv {
							inv = h[i]
							break
						}
					}
					ret := Value(OK)
					if inv.Op == "read" {
						ret = rng.Intn(5)
					}
					h = append(h, Ret(tx, inv.Obj, inv.Op, ret))
					s.phase = 0
				case 2:
					h = append(h, Abort(tx))
					s.phase = 3
				case 3:
					// leave the invocation pending
				}
			case 2:
				if rng.Intn(3) == 0 {
					h = append(h, Abort(tx))
				} else {
					h = append(h, Commit(tx))
				}
				s.phase = 3
			case 3:
				// completed; no more events
			}
		}
		if err := h.WellFormed(); err != nil {
			t.Fatalf("seed %d generated a malformed history: %v\n%s", seed, err, h.Format())
		}
		out = append(out, h)
	}
	return out
}

// TestOpExecsForMatchesOpExecs: the bulk extractor must agree with the
// per-transaction OpExecs on every transaction, including pending
// trailing invocations.
func TestOpExecsForMatchesOpExecs(t *testing.T) {
	for hi, h := range hotCorpus(t) {
		txs := h.Transactions()
		bulk := h.OpExecsFor(txs)
		if len(bulk) != len(txs) {
			t.Fatalf("history %d: %d slices for %d transactions", hi, len(bulk), len(txs))
		}
		for i, tx := range txs {
			want := h.OpExecs(tx)
			got := bulk[i]
			if len(got) != len(want) {
				t.Fatalf("history %d, T%d: bulk %d execs, OpExecs %d\n%s", hi, int(tx), len(got), len(want), h.Format())
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("history %d, T%d, exec %d: bulk %v, OpExecs %v", hi, int(tx), k, got[k], want[k])
				}
			}
		}
	}
}

// TestRealTimeOrderMatchesPrecedes: the span-derived pair list must
// contain exactly the pairs the pairwise Precedes oracle reports.
func TestRealTimeOrderMatchesPrecedes(t *testing.T) {
	for hi, h := range hotCorpus(t) {
		txs := h.Transactions()
		got := map[[2]TxID]bool{}
		for _, p := range h.RealTimeOrder() {
			got[p] = true
		}
		for _, ti := range txs {
			for _, tj := range txs {
				if ti == tj {
					continue
				}
				want := h.Precedes(ti, tj)
				if got[[2]TxID{ti, tj}] != want {
					t.Fatalf("history %d: RealTimeOrder(T%d ≺ T%d) = %v, Precedes says %v\n%s",
						hi, int(ti), int(tj), !want, want, h.Format())
				}
			}
		}
	}
}

// TestStatusMatchesSubOracle: the backward-scan Status must match the
// "last event of H|Ti" definition it replaced.
func TestStatusMatchesSubOracle(t *testing.T) {
	statusOf := func(h History, tx TxID) Status {
		sub := h.Sub(tx)
		if len(sub) == 0 {
			return StatusLive
		}
		switch sub[len(sub)-1].Kind {
		case KindCommit:
			return StatusCommitted
		case KindAbort:
			return StatusAborted
		case KindTryCommit:
			return StatusCommitPending
		default:
			return StatusLive
		}
	}
	for hi, h := range hotCorpus(t) {
		for _, tx := range h.Transactions() {
			if got, want := h.Status(tx), statusOf(h, tx); got != want {
				t.Fatalf("history %d: Status(T%d) = %v, oracle %v", hi, int(tx), got, want)
			}
		}
		if h.Status(9999) != StatusLive {
			t.Fatalf("history %d: absent transaction must report live", hi)
		}
	}
}

// TestManyTransactionsFallbacks drives Transactions, Objects, WellFormed
// and OpExecsFor past their linear-scan cutoffs (32 distinct entries)
// so the map-based fallbacks are exercised and agree with the small-n
// paths' semantics.
func TestManyTransactionsFallbacks(t *testing.T) {
	var h History
	for i := 1; i <= 40; i++ {
		ob := ObjID(fmt.Sprintf("o%d", i))
		h = append(h,
			Inv(TxID(i), ob, "write", i), Ret(TxID(i), ob, "write", OK),
			TryC(TxID(i)), Commit(TxID(i)))
	}
	if err := h.WellFormed(); err != nil {
		t.Fatalf("40-transaction history must be well-formed: %v", err)
	}
	txs := h.Transactions()
	if len(txs) != 40 {
		t.Fatalf("Transactions found %d, want 40", len(txs))
	}
	if objs := h.Objects(); len(objs) != 40 {
		t.Fatalf("Objects found %d, want 40", len(objs))
	}
	for i, tx := range txs {
		if tx != TxID(i+1) {
			t.Fatalf("transaction order: got %v at %d", tx, i)
		}
	}
	bulk := h.OpExecsFor(txs)
	for i, tx := range txs {
		want := h.OpExecs(tx)
		if len(bulk[i]) != len(want) {
			t.Fatalf("T%d: bulk %d execs, want %d", int(tx), len(bulk[i]), len(want))
		}
	}
	// And a malformed many-transaction history still errors (map path).
	bad := append(h.Clone(), Inv(1, "x", "read", nil))
	if bad.WellFormed() == nil {
		t.Fatal("event after commit must fail well-formedness on the map path")
	}
}
