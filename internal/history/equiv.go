package history

// equalEvents reports whether two event sequences are identical.
func equalEvents(a, b History) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equivalent reports whether h ≡ h2: both histories contain the same
// transactions, and every transaction issues the same invocation events
// and receives the same response events in both (H|Ti = H2|Ti for every
// Ti). Equivalent histories differ only in the relative position of
// events of different transactions.
func Equivalent(h, h2 History) bool {
	txs := h.Transactions()
	txs2 := h2.Transactions()
	if len(txs) != len(txs2) {
		return false
	}
	seen := make(map[TxID]bool, len(txs))
	for _, tx := range txs {
		seen[tx] = true
	}
	for _, tx := range txs2 {
		if !seen[tx] {
			return false
		}
	}
	for _, tx := range txs {
		if !equalEvents(h.Sub(tx), h2.Sub(tx)) {
			return false
		}
	}
	return true
}
