module otm

go 1.24
