package otm

// Guards the checked-in symmetric bench corpus and the node-count
// guarantee of the symmetry reduction on it, independently of the CI
// bench-smoke assertion (which parses the same numbers out of
// BenchmarkCheckOpacityBatch's output).

import (
	"testing"

	"otm/internal/core"
	"otm/internal/gen"
)

// TestSymmetricCorpusNodeReduction: on the corpus pinned by
// testdata/corpora/symmetric.json, the symmetry-reduced engine must
// agree with the unreduced engine on every verdict and explore at most
// half as many search nodes in total (the measured factor is ~12×; the
// 2× floor is the acceptance threshold, kept slack so corpus or engine
// tuning does not flake the suite). Everything is deterministic: the
// spec pins the generator config and seeds, and both engines are
// deterministic searches.
func TestSymmetricCorpusNodeReduction(t *testing.T) {
	spec, err := gen.LoadSpec("testdata/corpora/symmetric.json")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Clones < 2 {
		t.Fatalf("symmetric spec must request interchangeable clones, got %d", spec.Clones)
	}
	hs := spec.Corpus()

	symCtx, nosymCtx := core.NewSearchContext(), core.NewSearchContext()
	symNodes, nosymNodes, opaque := 0, 0, 0
	for i, h := range hs {
		sym, err := core.Check(h, core.Config{Context: symCtx})
		if err != nil {
			t.Fatalf("history %d: %v", i, err)
		}
		nosym, err := core.Check(h, core.Config{Context: nosymCtx, DisableSym: true})
		if err != nil {
			t.Fatalf("history %d: unreduced: %v", i, err)
		}
		if sym.Opaque != nosym.Opaque {
			t.Fatalf("history %d: reduced engine says opaque=%v, unreduced says %v:\n%s",
				i, sym.Opaque, nosym.Opaque, h.Format())
		}
		if sym.Opaque {
			opaque++
		}
		symNodes += sym.Nodes
		nosymNodes += nosym.Nodes
	}

	if opaque == 0 || opaque == len(hs) {
		t.Errorf("corpus verdicts do not split: %d/%d opaque", opaque, len(hs))
	}
	if symNodes*2 > nosymNodes {
		t.Errorf("symmetry reduction below the 2x floor on the pinned corpus: %d vs %d nodes (%.2fx)",
			symNodes, nosymNodes, float64(nosymNodes)/float64(symNodes))
	}
	stats := symCtx.Stats()
	if stats.SymClasses == 0 || stats.SymPrunes == 0 || stats.LegalSkips == 0 {
		t.Errorf("reduction counters not exercised on the symmetric corpus: %+v", stats)
	}
}
