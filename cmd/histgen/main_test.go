package main

import (
	"fmt"
	"strings"
	"testing"

	"otm/internal/gen"
)

// TestShardedGenerationConcatenates is the -shard contract: for any k,
// emitting the k slices separately and concatenating them reproduces the
// unsharded corpus byte for byte.
func TestShardedGenerationConcatenates(t *testing.T) {
	cfg := gen.Config{Txs: 3, Objs: 2, MaxOps: 3, PStaleRead: 0.25}
	const n, seed = 47, int64(11)

	var full strings.Builder
	emit(&full, cfg, seed, 0, n)
	if lines := strings.Count(full.String(), "\n"); lines != n {
		t.Fatalf("full corpus has %d lines, want %d", lines, n)
	}

	for _, k := range []int{1, 2, 3, 7, n, n + 5} {
		var cat strings.Builder
		for i := 0; i < k; i++ {
			lo, hi, err := shardBounds(n, fmt.Sprintf("%d/%d", i, k))
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, k, err)
			}
			emit(&cat, cfg, seed, lo, hi)
		}
		if cat.String() != full.String() {
			t.Errorf("k=%d: concatenated shards differ from the full corpus", k)
		}
	}
}

func TestShardBoundsRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{"x", "1", "2/2", "-1/2", "1/0", "a/b", "1/2/3"} {
		if _, _, err := shardBounds(10, bad); err == nil {
			t.Errorf("shardBounds(10, %q) accepted", bad)
		}
	}
	if lo, hi, err := shardBounds(10, ""); err != nil || lo != 0 || hi != 10 {
		t.Errorf("empty shard spec = (%d,%d,%v), want the whole corpus", lo, hi, err)
	}
}
