package main

import (
	"fmt"
	"strings"
	"testing"

	"otm/internal/gen"
	"otm/internal/history"
)

// TestShardedGenerationConcatenates is the -shard contract: for any k,
// emitting the k slices separately and concatenating them reproduces the
// unsharded corpus byte for byte.
func TestShardedGenerationConcatenates(t *testing.T) {
	cfg := gen.Config{Txs: 3, Objs: 2, MaxOps: 3, PStaleRead: 0.25}
	const n, seed = 47, int64(11)

	var full strings.Builder
	emit(&full, cfg, seed, 0, n)
	if lines := strings.Count(full.String(), "\n"); lines != n {
		t.Fatalf("full corpus has %d lines, want %d", lines, n)
	}

	for _, k := range []int{1, 2, 3, 7, n, n + 5} {
		var cat strings.Builder
		for i := 0; i < k; i++ {
			lo, hi, err := shardBounds(n, fmt.Sprintf("%d/%d", i, k))
			if err != nil {
				t.Fatalf("shard %d/%d: %v", i, k, err)
			}
			emit(&cat, cfg, seed, lo, hi)
		}
		if cat.String() != full.String() {
			t.Errorf("k=%d: concatenated shards differ from the full corpus", k)
		}
	}
}

// TestEmitClones: the -clones path emits parseable symmetric workloads —
// every line still one history with the trailing seed comment, and the
// history holding txs×clones transactions (plus T0 under -init).
func TestEmitClones(t *testing.T) {
	cfg := gen.Config{Txs: 2, Objs: 2, MaxOps: 2, Clones: 3, WithInit: true}
	var out strings.Builder
	emit(&out, cfg, 5, 0, 4)
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4", len(lines))
	}
	for i, line := range lines {
		src, comment, ok := strings.Cut(line, "#")
		if !ok || !strings.Contains(comment, fmt.Sprintf("seed=%d", 5+i)) {
			t.Fatalf("line %d lacks the seed comment: %q", i, line)
		}
		h, err := history.Parse(strings.TrimSpace(src))
		if err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if got := len(h.Transactions()); got != 2*3+1 {
			t.Errorf("line %d: %d transactions, want txs*clones+1 = 7", i, got)
		}
	}
}

func TestShardBoundsRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{"x", "1", "2/2", "-1/2", "1/0", "a/b", "1/2/3"} {
		if _, _, err := shardBounds(10, bad); err == nil {
			t.Errorf("shardBounds(10, %q) accepted", bad)
		}
	}
	if lo, hi, err := shardBounds(10, ""); err != nil || lo != 0 || hi != 10 {
		t.Errorf("empty shard spec = (%d,%d,%v), want the whole corpus", lo, hi, err)
	}
}
