// Command histgen emits random well-formed transactional histories in
// the textual notation of cmd/opacheck — a shell-level fuzzing aid:
//
//	histgen -n 20 -txs 4 -objs 2 -seed 7 | opacheck
//
// Each history is printed on one line; a trailing comment records the
// seed so failures are reproducible.
package main

import (
	"flag"
	"fmt"

	"otm/internal/gen"
)

func main() {
	n := flag.Int("n", 10, "number of histories")
	txs := flag.Int("txs", 4, "transactions per history")
	objs := flag.Int("objs", 2, "registers per history")
	maxOps := flag.Int("ops", 3, "max operations per transaction")
	seed := flag.Int64("seed", 1, "base seed (history i uses seed+i)")
	stale := flag.Float64("stale", 0.25, "probability of adversarial read values")
	init := flag.Bool("init", false, "prepend the initializing transaction T0")
	flag.Parse()

	cfg := gen.Config{
		Txs: *txs, Objs: *objs, MaxOps: *maxOps,
		PStaleRead: *stale, WithInit: *init,
	}
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		h := gen.History(cfg, s)
		fmt.Printf("%s   # seed=%d\n", h, s)
	}
}
