// Command histgen emits random well-formed transactional histories in
// the textual notation of cmd/opacheck — a shell-level fuzzing aid:
//
//	histgen -n 20 -txs 4 -objs 2 -seed 7 | opacheck
//
// Each history is printed on one line; a trailing comment records the
// seed so failures are reproducible.
//
// -clones N with N > 1 switches to the symmetric-workload generator:
// every history holds -txs transaction templates instantiated N times
// each, all instances pairwise concurrent and fully interchangeable —
// the corpus shape that exercises the search engine's symmetry
// reduction (see `opacheck -parallel`'s reductions summary line).
//
// -shard i/k restricts the output to the i-th of k contiguous slices of
// the corpus (0 ≤ i < k). History j always uses seed+j no matter which
// shard emits it, so the slices are deterministic and concatenating
// shards 0/k through (k-1)/k reproduces the unsharded corpus exactly —
// generate a large corpus on several machines without coordination:
//
//	histgen -n 1000000 -shard 3/8 > part3.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"otm/internal/gen"
)

func main() {
	n := flag.Int("n", 10, "number of histories in the whole corpus")
	txs := flag.Int("txs", 4, "transactions per history")
	objs := flag.Int("objs", 2, "registers per history")
	maxOps := flag.Int("ops", 3, "max operations per transaction")
	seed := flag.Int64("seed", 1, "base seed (history i uses seed+i)")
	stale := flag.Float64("stale", 0.25, "probability of adversarial read values")
	init := flag.Bool("init", false, "prepend the initializing transaction T0")
	clones := flag.Int("clones", 1, "interchangeable instances per transaction template (>1 switches to the symmetric-workload generator; -txs counts templates)")
	shard := flag.String("shard", "", "emit only slice i of k (\"i/k\"); concatenated slices equal the full corpus")
	flag.Parse()

	lo, hi, err := shardBounds(*n, *shard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "histgen: %v\n", err)
		os.Exit(2)
	}

	cfg := gen.Config{
		Txs: *txs, Objs: *objs, MaxOps: *maxOps,
		PStaleRead: *stale, WithInit: *init, Clones: *clones,
	}
	w := bufio.NewWriter(os.Stdout)
	emit(w, cfg, *seed, lo, hi)
	w.Flush()
}

// shardBounds resolves the -shard flag to the half-open history-index
// range to emit: the whole corpus when the flag is empty.
func shardBounds(n int, shard string) (lo, hi int, err error) {
	if shard == "" {
		return 0, n, nil
	}
	is, ks, ok := strings.Cut(shard, "/")
	i, err1 := strconv.Atoi(is)
	k, err2 := strconv.Atoi(ks)
	if !ok || err1 != nil || err2 != nil || k < 1 || i < 0 || i >= k {
		return 0, 0, fmt.Errorf("-shard wants \"i/k\" with 0 <= i < k, got %q", shard)
	}
	lo, hi = gen.ShardRange(n, i, k)
	return lo, hi, nil
}

// emit writes histories lo..hi of the corpus, one per line with the
// reproducing seed as a trailing comment. History j uses seed+j
// regardless of the emitting shard, which is what makes sharded output
// concatenate to the unsharded corpus.
func emit(w io.Writer, cfg gen.Config, seed int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := seed + int64(i)
		fmt.Fprintf(w, "%s   # seed=%d\n", gen.History(cfg, s), s)
	}
}
