package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"otm/internal/history"
	"otm/internal/monitor"
)

// soakConfig parameterizes a -soak run: a long synthetic monitored
// session that reports the monitor's per-event latency and retained
// state over time. The workload is bursts of concurrent committed
// transactions — every burst boundary is a quiescent point, so an armed
// truncation policy gets a checkpoint opportunity each burst, while
// within a burst the transactions genuinely overlap.
type soakConfig struct {
	events     int // total events to stream (approximate: whole bursts)
	window     int // reporting window, in events
	burst      int // concurrent transactions per burst
	objects    int // distinct objects
	truncAfter int // Options.TruncateAfterEvents; 0 = truncation off
	assert     bool
}

// soakWindow is one reporting row.
type soakWindow struct {
	events      int
	meanLatency time.Duration
	maxLatency  time.Duration
	live        int
	checkpoints int
	roots       int
	heapAlloc   uint64
}

// runSoak streams the synthetic workload through a Sync session and
// prints one row per window. With cfg.assert it exits nonzero when the
// trajectory is not flat: per-event latency or retained state growing
// monotonically across windows is exactly the failure mode checkpointed
// truncation exists to prevent, so a regression there must fail CI.
func runSoak(cfg soakConfig) {
	mode := "truncation off"
	if cfg.truncAfter > 0 {
		mode = fmt.Sprintf("truncate after %d live events", cfg.truncAfter)
	}
	fmt.Printf("== soak: %d events, bursts of %d txs over %d objects, %s ==\n",
		cfg.events, cfg.burst, cfg.objects, mode)

	sess := monitor.New(monitor.Options{
		Mode:                monitor.Sync,
		TruncateAfterEvents: cfg.truncAfter,
	})
	defer sess.Close()

	// Rows print as they complete (the point of a soak is watching the
	// trajectory live), so fixed widths instead of a tabwriter.
	fmt.Printf("%10s  %9s  %8s  %6s  %11s  %5s  %9s  %8s\n",
		"events", "ns/event", "max µs", "live", "checkpoints", "roots", "truncated", "heap MiB")

	var (
		windows   []soakWindow
		winEvents int
		winTotal  time.Duration
		winMax    time.Duration
		nextTx    = 1
		value     = 1
	)
	flush := func(v monitor.Verdict) {
		if winEvents == 0 {
			return
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		row := soakWindow{
			events:      v.Events,
			meanLatency: winTotal / time.Duration(winEvents),
			maxLatency:  winMax,
			live:        v.LiveEvents,
			checkpoints: v.Checkpoints,
			roots:       v.Roots,
			heapAlloc:   ms.HeapAlloc,
		}
		windows = append(windows, row)
		fmt.Printf("%10d  %9d  %8.1f  %6d  %11d  %5d  %9d  %8.1f\n",
			row.events, row.meanLatency.Nanoseconds(),
			float64(row.maxLatency.Microseconds()),
			row.live, row.checkpoints, row.roots, v.TruncatedEvents,
			float64(row.heapAlloc)/(1<<20))
		winEvents, winTotal, winMax = 0, 0, 0
	}

	var last monitor.Verdict
	for last.Events < cfg.events {
		for _, ev := range soakBurst(&nextTx, &value, cfg.burst, cfg.objects) {
			start := time.Now()
			last = sess.Append(ev)
			lat := time.Since(start)
			winEvents++
			winTotal += lat
			if lat > winMax {
				winMax = lat
			}
			if last.Status != monitor.StatusOpaque {
				fmt.Fprintf(os.Stderr, "tmbench: soak workload flagged %v at event %d: %v\n",
					last.Status, last.Events, last.Err)
				os.Exit(1)
			}
			if winEvents >= cfg.window {
				flush(last)
			}
		}
	}
	// A trailing partial window is dropped: a handful of events is all
	// noise (one GC pause dominates its mean) and would poison the
	// trajectory assertion.
	fmt.Println()

	if cfg.assert {
		if err := assertFlat(windows, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: soak assertion failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("soak assertion: latency and retained state are flat")
	}
}

// soakBurst emits one burst: burst transactions that all start before
// any of them finishes (so they overlap in real time), each writing a
// fresh value to its own object, reading it back, and committing. The
// burst is opaque by construction and ends at a quiescent point.
func soakBurst(nextTx, value *int, burst, objects int) history.History {
	type btx struct {
		id  history.TxID
		obj history.ObjID
		val int
	}
	txs := make([]btx, burst)
	for i := range txs {
		txs[i] = btx{
			id:  history.TxID(*nextTx),
			obj: history.ObjID(fmt.Sprintf("x%d", (*nextTx)%objects)),
			val: *value,
		}
		*nextTx++
		*value++
	}
	evs := make(history.History, 0, 6*burst)
	for _, t := range txs { // overlapping opens
		evs = append(evs, history.Inv(t.id, t.obj, "write", t.val))
	}
	for _, t := range txs {
		evs = append(evs,
			history.Ret(t.id, t.obj, "write", history.OK),
			history.Inv(t.id, t.obj, "read", nil),
			history.Ret(t.id, t.obj, "read", t.val))
	}
	for _, t := range txs { // all complete before the next burst
		evs = append(evs, history.TryC(t.id), history.Commit(t.id))
	}
	return evs
}

// assertFlat fails when the per-window trajectory exhibits the unbounded
// growth truncation is meant to eliminate. The first window is warmup
// (context tables filling, memo cold); comparisons run from the second.
func assertFlat(windows []soakWindow, cfg soakConfig) error {
	if len(windows) < 3 {
		return fmt.Errorf("only %d windows — not enough trajectory to judge (lower -soak-window or raise -soak-events)", len(windows))
	}
	base, last := windows[1], windows[len(windows)-1]
	if cfg.truncAfter > 0 && last.checkpoints == 0 {
		return fmt.Errorf("truncation armed but no checkpoint was ever taken")
	}
	// Retained state must stay near the truncation threshold: a burst can
	// overshoot it (truncation waits for quiescence) but the live suffix
	// must not scale with session length.
	if bound := 2*cfg.truncAfter + 6*cfg.burst; cfg.truncAfter > 0 && last.live > bound {
		return fmt.Errorf("live suffix grew to %d events (threshold %d, bound %d)", last.live, cfg.truncAfter, bound)
	}
	// Latency must be flat: strict monotone growth across every window,
	// or a blowup vs the warm baseline, is the O(session-age) regression.
	if last.meanLatency > 4*base.meanLatency {
		return fmt.Errorf("mean latency grew %v → %v (>4×) across the session", base.meanLatency, last.meanLatency)
	}
	monotone := true
	for i := 2; i < len(windows); i++ {
		if windows[i].meanLatency <= windows[i-1].meanLatency {
			monotone = false
			break
		}
	}
	if monotone {
		return fmt.Errorf("mean latency grew monotonically across all %d measured windows (%v → %v)",
			len(windows)-1, base.meanLatency, last.meanLatency)
	}
	return nil
}
