// Command tmbench regenerates the quantitative tables of EXPERIMENTS.md:
// the Theorem 3 step-complexity sweep (E9), the Θ(k²) tightness table
// (E10) and the throughput comparison (E13).
//
// Usage:
//
//	tmbench              # all tables
//	tmbench -sweep       # E9 only
//	tmbench -scan        # E10 only
//	tmbench -throughput  # E13 only
//	tmbench -zombie      # E7/E12 demo: zombie read under gatm vs dstm
//	tmbench -monitor M   # engine × manager × workload matrix under a
//	                     # live opacity monitor (M = sync or async)
//	tmbench -soak        # long monitored session: per-event latency and
//	                     # retained state over time (see -trunc-after,
//	                     # -soak-assert)
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"otm/internal/bench"
	"otm/internal/cm"
	"otm/internal/controlplane"
	"otm/internal/core"
	"otm/internal/criteria"
	"otm/internal/interleave"
	"otm/internal/monitor"
	"otm/internal/stm"
	"otm/internal/stm/dstm"
	"otm/internal/stm/gatm"
)

var sweepKs = []int{16, 64, 256, 1024, 4096}

func main() {
	sweep := flag.Bool("sweep", false, "run the E9 steps-per-operation sweep")
	scan := flag.Bool("scan", false, "run the E10 full-scan table")
	throughput := flag.Bool("throughput", false, "run the E13 throughput comparison")
	cmAblation := flag.Bool("cm", false, "run the contention-manager ablation")
	matrix := flag.Bool("matrix", false, "run the cross-engine behaviour matrix")
	zombie := flag.Bool("zombie", false, "run the E7/E12 zombie demonstration")
	monitored := flag.String("monitor", "", "run every engine × contention-manager × workload mix under a live opacity monitor: sync or async")
	listen := flag.String("listen", "", "with -monitor: serve the fleet's /metrics and /status on this address while the matrix runs")
	goroutines := flag.Int("g", 8, "goroutines for -throughput, -cm and -monitor")
	txPerG := flag.Int("tx", 2000, "transactions per goroutine")
	soak := flag.Bool("soak", false, "run a long monitored session and report the per-event latency / retained-state trajectory")
	soakEvents := flag.Int("soak-events", 100000, "total events for -soak")
	soakWindowN := flag.Int("soak-window", 5000, "reporting window for -soak, in events")
	soakBurstN := flag.Int("soak-burst", 4, "concurrent transactions per burst for -soak")
	soakObjs := flag.Int("soak-k", 8, "distinct objects for -soak")
	truncAfter := flag.Int("trunc-after", 128, "checkpointed truncation threshold for -soak and -monitor, in live events (0 = truncation off)")
	soakAssert := flag.Bool("soak-assert", false, "with -soak: exit nonzero unless latency and retained state stay flat")
	flag.Parse()

	if *soak {
		runSoak(soakConfig{
			events:     *soakEvents,
			window:     *soakWindowN,
			burst:      *soakBurstN,
			objects:    *soakObjs,
			truncAfter: *truncAfter,
			assert:     *soakAssert,
		})
		return
	}
	if *monitored != "" {
		var mode monitor.Mode
		switch *monitored {
		case "sync":
			mode = monitor.Sync
		case "async":
			mode = monitor.Async
		default:
			fmt.Fprintf(os.Stderr, "tmbench: -monitor must be sync or async, got %q\n", *monitored)
			os.Exit(2)
		}
		runMonitored(mode, *goroutines, *txPerG, *truncAfter, *listen)
		return
	}

	all := !*sweep && !*scan && !*throughput && !*zombie && !*cmAblation && !*matrix
	if *sweep || all {
		runSweep()
	}
	if *scan || all {
		runScan()
	}
	if *throughput || all {
		runThroughput(*goroutines, *txPerG)
	}
	if *cmAblation || all {
		runCMAblation(*goroutines, *txPerG)
	}
	if *matrix || all {
		runMatrix()
	}
	if *zombie || all {
		runZombie()
	}
}

// runMatrix prints the cross-engine behaviour matrix: how each engine
// handles the §2 zombie probe and the write-skew schedule.
func runMatrix() {
	fmt.Println("== behaviour matrix: §2 zombie probe and write skew ==")
	w := newTab()
	fmt.Fprintln(w, "engine\topaque\tzombie probe\twrite skew")
	for _, e := range bench.Engines() {
		probe := interleave.Classify(e.New(2))

		tm := e.New(2)
		_ = stm.DirectWrite(tm, 0, 50)
		_ = stm.DirectWrite(tm, 1, 50)
		res := interleave.Run(tm, interleave.WriteSkewSchedule())
		skew := "prevented"
		if res[8].Err == nil && res[9].Err == nil {
			skew = "ADMITTED"
		}
		opq := "yes"
		if !e.Opaque {
			opq = "NO"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", e.Name, opq, probe, skew)
	}
	w.Flush()
	fmt.Println()
}

// runCMAblation compares contention managers on the progressive engines
// under a maximally hot workload (two objects, long transactions) where
// the victim-selection policy actually decides outcomes.
func runCMAblation(g, txPerG int) {
	fmt.Printf("== contention-manager ablation: k=2, 50%% reads, 8 ops/tx, %d goroutines ==\n", g)
	w := newTab()
	fmt.Fprintln(w, "engine\tmanager\tcommits/s\tabort rate")
	for _, engine := range []string{"dstm", "vstm"} {
		for _, mgr := range bench.Managers() {
			e, err := bench.ManagedEngine(engine, mgr)
			if err != nil {
				fmt.Fprintf(w, "%s\t%s\tERR\t%v\n", engine, mgr.Name(), err)
				continue
			}
			r := bench.Throughput(e, 2, g, txPerG, 8, 0.5)
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.1f%%\n", engine, mgr.Name(), r.OpsPerSec(), 100*r.AbortRate())
		}
	}
	w.Flush()
	fmt.Println()
}

// runMonitored is the -monitor matrix: every engine (× contention
// manager for the managed progressive engines) × workload mix, with
// every recorded event streamed through a live opacity monitor. Few hot
// objects keep conflicts frequent — the regime where a non-opaque
// engine's zombies actually surface mid-run. Throughput includes the
// recording and (for sync) checking overhead, so the table doubles as a
// live-monitoring cost sheet; BenchmarkMonitorOverhead measures the
// same decomposition under the testing harness.
//
// Every row's session is a member of one controlplane.Fleet, so the
// matrix reports through the same telemetry counters the monitoring
// control plane exports: -listen serves the fleet's /metrics and
// /status while the matrix runs, and the closing fleet summary is the
// aggregated Status. truncAfter bounds each session's live suffix
// (checkpointed truncation), which is what keeps the default 2000
// tx/goroutine workload flat-cost per event.
func runMonitored(mode monitor.Mode, g, txPerG, truncAfter int, listen string) {
	const k, opsPerTx = 2, 8
	mopts := monitor.Options{Mode: mode, TruncateAfterEvents: truncAfter}
	if truncAfter > 0 {
		// Throughput workloads never quiesce on their own; without the
		// admission barrier the live suffix grows unboundedly and the
		// per-event cost with it (see monitor.Options.TruncateBarrier).
		mopts.TruncateBarrier = 4 * truncAfter
	}
	fleet, err := controlplane.New(controlplane.Options{Monitor: mopts})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
		os.Exit(1)
	}
	if listen != "" {
		ln, err := net.Listen("tcp", listen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tmbench: %v\n", err)
			os.Exit(1)
		}
		srv := &http.Server{Handler: fleet.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tmbench: serving fleet metrics on http://%s/metrics\n", ln.Addr())
	}

	fmt.Printf("== live opacity monitoring (%s): k=%d, %d goroutines × %d tx, %d ops/tx, trunc-after=%d ==\n",
		mode, k, g, txPerG, opsPerTx, truncAfter)
	w := newTab()
	fmt.Fprintln(w, "engine\tmanager\tmix\tcommits/s\tabort rate\tevents\tchecked\tnodes\tfast\tckpts\tverdict")
	type caught struct {
		row  string
		viol *monitor.Violation
	}
	var caughts []caught
	for _, e := range bench.Engines() {
		mgrs := []cm.Manager{nil}
		if _, err := bench.ManagedEngine(e.Name, cm.Aggressive{}); err == nil {
			mgrs = bench.Managers()
		}
		for _, mgr := range mgrs {
			engine, label := e, "—"
			if mgr != nil {
				engine, _ = bench.ManagedEngine(e.Name, mgr)
				label = mgr.Name()
			}
			for _, mix := range []struct {
				name string
				frac float64
			}{{"90% reads", 0.9}, {"50% reads", 0.5}} {
				row := fmt.Sprintf("%s/%s/%s", e.Name, label, mix.name)
				var member *controlplane.Member
				wrapped := bench.Engine{
					Name: engine.Name,
					New: func(n int) stm.TM {
						rec := stm.NewRecorder(engine.New(n))
						m, err := fleet.Attach(row, rec)
						if err != nil {
							fmt.Fprintf(os.Stderr, "tmbench: %s: %v\n", row, err)
							os.Exit(1)
						}
						member = m
						return rec
					},
				}
				r := bench.Throughput(wrapped, k, g, txPerG, opsPerTx, mix.frac)
				v := member.Close()
				verdict := v.Status.String()
				if v.Status == monitor.StatusViolated {
					verdict = fmt.Sprintf("VIOLATED@%d", v.PrefixLen)
				}
				fmt.Fprintf(w, "%s\t%s\t%s\t%.0f\t%.1f%%\t%d\t%d\t%d\t%d\t%d\t%s\n",
					e.Name, label, mix.name, r.OpsPerSec(), 100*r.AbortRate(),
					v.Events, v.Checked, v.Nodes, v.FastPath, v.Checkpoints, verdict)
				if viol := member.Session().Violation(); viol != nil {
					caughts = append(caughts, caught{row: row, viol: viol})
				}
				if v.Err != nil {
					fmt.Fprintf(os.Stderr, "tmbench: %s: monitoring failed: %v\n", row, v.Err)
				}
			}
		}
	}
	w.Flush()
	for _, c := range caughts {
		fmt.Printf("\n%s: first violation at event %d (%s)\n", c.row, c.viol.PrefixLen-1, c.viol.Event)
		if c.viol.Diagnosed {
			fmt.Printf("  %s\n", c.viol.Diagnosis)
		}
	}
	st := fleet.Close()
	fmt.Printf("\nfleet: %d sessions, %d events (%.0f events/s overall), %d violations, status %s\n\n",
		st.Sessions, st.Events, st.EventsPerSec, st.Violations, st.FleetStatus)
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func runSweep() {
	fmt.Println("== E9: steps per operation in the Theorem 3 scenario ==")
	fmt.Println("   (T1 reads k/2 objects; T2 commits a write; measure T1's next read)")
	w := newTab()
	fmt.Fprintf(w, "engine\tproperties\texpected")
	for _, k := range sweepKs {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, e := range bench.Engines() {
		fmt.Fprintf(w, "%s\t%s\t%s", e.Name, props(e), e.Complexity)
		for _, k := range sweepKs {
			steps, err := bench.StepsForNextRead(e, k)
			if err != nil {
				fmt.Fprintf(w, "\tERR")
				continue
			}
			fmt.Fprintf(w, "\t%d", steps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println()
}

func runScan() {
	fmt.Println("== E10: total steps for a transaction reading all k objects ==")
	w := newTab()
	fmt.Fprintf(w, "engine\texpected")
	for _, k := range sweepKs {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, e := range bench.Engines() {
		exp := "Θ(k)"
		if e.Name == "dstm" {
			exp = "Θ(k²)"
		}
		fmt.Fprintf(w, "%s\t%s", e.Name, exp)
		for _, k := range sweepKs {
			steps, err := bench.FullScanSteps(e, k)
			if err != nil {
				fmt.Fprintf(w, "\tERR")
				continue
			}
			fmt.Fprintf(w, "\t%d", steps)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println()
}

func runThroughput(g, txPerG int) {
	fmt.Printf("== E13: throughput, k=256, %d goroutines, %d tx each ==\n", g, txPerG)
	w := newTab()
	fmt.Fprintln(w, "mix\tengine\tcommits/s\tabort rate")
	for _, mix := range []struct {
		name string
		frac float64
	}{{"90% reads", 0.9}, {"50% reads", 0.5}} {
		for _, e := range bench.Engines() {
			r := bench.Throughput(e, 256, g, txPerG, 8, mix.frac)
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.1f%%\n", mix.name, e.Name, r.OpsPerSec(), 100*r.AbortRate())
		}
	}
	w.Flush()
	fmt.Println()
}

func props(e bench.Engine) string {
	var p []string
	if e.SingleVersion {
		p = append(p, "1v")
	} else {
		p = append(p, "mv")
	}
	if e.InvisibleReads {
		p = append(p, "inv-rd")
	} else {
		p = append(p, "vis-rd")
	}
	if e.Progressive {
		p = append(p, "prog")
	}
	if !e.Opaque {
		p = append(p, "NOT-OPAQUE")
	}
	return strings.Join(p, ",")
}

// runZombie replays the §2 inconsistent-view schedule against gatm (the
// zombie reads y=1 while having read x=0) and dstm (the reader is
// aborted instead), then prints the criteria verdicts of the recorded
// gatm history — the executable Figure 1 punchline.
func runZombie() {
	fmt.Println("== E7/E12: zombie demonstration (schedule of §2) ==")

	run := func(tm stm.TM) (string, *stm.Recorder) {
		rec := stm.NewRecorder(tm)
		t1 := rec.Begin()
		if _, err := t1.Read(0); err != nil {
			return "t1's first read aborted", rec
		}
		t2 := rec.Begin()
		_ = t2.Write(0, 1)
		_ = t2.Write(1, 1)
		if err := t2.Commit(); err != nil {
			return "writer failed to commit", rec
		}
		v, err := t1.Read(1)
		if err != nil {
			return "reader forcefully aborted at the second read (no zombie)", rec
		}
		_ = t1.Commit()
		return fmt.Sprintf("reader observed x=0 and y=%d — INCONSISTENT SNAPSHOT", v), rec
	}

	for _, tc := range []struct {
		name string
		tm   stm.TM
	}{
		{"gatm", gatm.New(2)},
		{"dstm", dstm.New(2, cm.Aggressive{})},
	} {
		outcome, rec := run(tc.tm)
		fmt.Printf("\n%s: %s\n", tc.name, outcome)
		h := rec.History()
		fmt.Println(h.Format())
		rep, err := criteria.Evaluate(h, nil)
		if err != nil {
			fmt.Printf("criteria error: %v\n", err)
			continue
		}
		fmt.Print(rep)
		res, err := core.Opaque(h)
		if err == nil && !res.Opaque {
			fmt.Println("=> the recorded history violates opacity while satisfying global atomicity")
		}
	}
}
