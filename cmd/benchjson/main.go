// Command benchjson converts `go test -bench` text output into a JSON
// document keyed by benchmark, so CI can archive one machine-readable
// perf snapshot per commit (BENCH_<sha>.json) and trajectory tooling can
// diff runs without re-parsing the bench grammar.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -commit abc1234 > BENCH_abc1234.json
//	benchjson -in bench-smoke.txt -out BENCH_abc1234.json
//
// Every metric a benchmark reports — the built-in ns/op, B/op and
// allocs/op as well as custom b.ReportMetric columns like steps/op or
// commits/s — lands in the benchmark's metrics map under its unit name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line, in go test -bench order.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// the -cpu suffix (e.g. "BenchmarkMonitorSoak/trunc-20k-8").
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in, from the preceding "pkg:"
	// header line.
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	// Commit is the value of -commit, typically the short git SHA.
	Commit string `json:"commit,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks preserves input order; Index maps "pkg:name" to the
	// position in Benchmarks for keyed lookup.
	Benchmarks []Benchmark    `json:"benchmarks"`
	Index      map[string]int `json:"index"`
}

func main() {
	in := flag.String("in", "", "input file (default stdin)")
	out := flag.String("out", "", "output file (default stdout)")
	commit := flag.String("commit", "", "commit identifier to embed in the report")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	rep.Commit = *commit
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out != "" {
		err = os.WriteFile(*out, buf, 0o644)
	} else {
		_, err = os.Stdout.Write(buf)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// Parse reads go test -bench output and collects every benchmark result
// line, tracking the pkg/goos/goarch/cpu header lines as they go by.
// Non-benchmark lines (PASS, ok, test log output) are ignored; a
// malformed Benchmark... line is an error, not a skip, so a format drift
// in the bench grammar fails loudly instead of dropping data.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Index: map[string]int{}}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseLine(line, pkg)
		if err != nil {
			return nil, err
		}
		rep.Index[b.Pkg+":"+b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line:
//
//	BenchmarkName-8   100   123 ns/op   45 B/op   6 allocs/op   7.5 steps/op
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseLine(line, pkg string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("truncated benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark line %q: iteration count: %w", line, err)
	}
	b := Benchmark{Name: f[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("benchmark line %q: odd value/unit tail", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark line %q: value %q: %w", line, rest[i], err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, nil
}
