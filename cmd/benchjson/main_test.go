package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: otm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStepsPerOp/dstm/k=16-8         	       1	     12345 ns/op	        33.00 steps/op
BenchmarkMonitorSoak/trunc-20k-8        	       1	 311232268 ns/op	        75.00 checkpoints	       216.0 live-events	     15549 ns/event
PASS
ok  	otm	0.555s
pkg: otm/internal/core
BenchmarkCheckOpacity/random-8          	     100	    98765 ns/op	    2048 B/op	      12 allocs/op
PASS
ok  	otm/internal/core	1.2s
pkg: otm
BenchmarkCheckOpacityBatch/mixed/shared4-8         	      60	  23674066 ns/op	         0.1404 memo-hit-rate	     10853 nodes/corpus	       685.0 states-interned	 6933293 B/op	   21130 allocs/op
BenchmarkCheckOpacityBatch/symmetric/sequential-8  	       1	   5894659 ns/op	      2451 legal-skips/corpus	         0.3436 memo-hit-rate	      7482 nodes/corpus	        37.00 states-interned	     13003 sym-prunes/corpus	 2955344 B/op	    5963 allocs/op
PASS
ok  	otm	2.1s
pkg: otm/internal/dist
BenchmarkDistributed/workers=2-8         	       2	  22034965 ns/op	     23237 histories/s	       363.1 shards/s	11591160 B/op	   27172 allocs/op
PASS
ok  	otm/internal/dist	1.9s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("headers: %+v", rep)
	}
	if len(rep.Benchmarks) != 6 {
		t.Fatalf("parsed %d benchmarks, want 6", len(rep.Benchmarks))
	}
	soak := rep.Benchmarks[rep.Index["otm:BenchmarkMonitorSoak/trunc-20k-8"]]
	if soak.Pkg != "otm" || soak.Iterations != 1 {
		t.Errorf("soak = %+v", soak)
	}
	for unit, want := range map[string]float64{
		"ns/op": 311232268, "checkpoints": 75, "live-events": 216, "ns/event": 15549,
	} {
		if got := soak.Metrics[unit]; got != want {
			t.Errorf("soak %s = %v, want %v", unit, got, want)
		}
	}
	mem := rep.Benchmarks[rep.Index["otm/internal/core:BenchmarkCheckOpacity/random-8"]]
	if mem.Metrics["B/op"] != 2048 || mem.Metrics["allocs/op"] != 12 {
		t.Errorf("benchmem metrics = %v", mem.Metrics)
	}
	if mem.Pkg != "otm/internal/core" {
		t.Errorf("pkg header not tracked across sections: %q", mem.Pkg)
	}
	// The shared-table batch variants report fractional and dashed custom
	// units; both must survive the round trip under their exact names.
	sh := rep.Benchmarks[rep.Index["otm:BenchmarkCheckOpacityBatch/mixed/shared4-8"]]
	if sh.Metrics["memo-hit-rate"] != 0.1404 || sh.Metrics["states-interned"] != 685 {
		t.Errorf("shared batch metrics = %v", sh.Metrics)
	}
	// The symmetry-reduction counters of the symmetric-corpus batch run
	// land under their exact metric names — the CI bench assertion and
	// trajectory tooling key on sym-prunes/corpus and legal-skips/corpus.
	sym := rep.Benchmarks[rep.Index["otm:BenchmarkCheckOpacityBatch/symmetric/sequential-8"]]
	if sym.Metrics["sym-prunes/corpus"] != 13003 || sym.Metrics["legal-skips/corpus"] != 2451 ||
		sym.Metrics["nodes/corpus"] != 7482 {
		t.Errorf("symmetric batch metrics = %v", sym.Metrics)
	}
	// The distributed benchmark's throughput units (with a "/s" suffix
	// and an "=" in the sub-benchmark name) parse under their exact names.
	dist := rep.Benchmarks[rep.Index["otm/internal/dist:BenchmarkDistributed/workers=2-8"]]
	if dist.Metrics["shards/s"] != 363.1 || dist.Metrics["histories/s"] != 23237 {
		t.Errorf("distributed metrics = %v", dist.Metrics)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX\n",                 // no iteration count
		"BenchmarkX 10 12 ns/op 5\n",   // dangling value
		"BenchmarkX ten 12 ns/op\n",    // non-numeric iterations
		"BenchmarkX 10 twelve ns/op\n", // non-numeric value
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}
