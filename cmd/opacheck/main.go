// Command opacheck checks transactional histories against opacity and
// the weaker correctness criteria of the paper's §3, and prints the
// opacity graph of the Theorem 2 characterization.
//
// Usage:
//
//	opacheck [-counter obj] [-graph] [-demo name] [history...]
//	opacheck -parallel N [-shared] [-counter obj] [-maxnodes B] [file...]
//	opacheck -replay URI
//
// -replay re-checks a violation artifact captured by the monitoring
// control plane (`otmd monitor -artifacts ...`): it decodes the
// artifact, re-derives the verdict with a fresh offline diagnosis and
// exits 0 only if verdict, violation position and culprit set all match
// the capture.
//
// Histories are given as arguments or read from stdin (one per line; see
// internal/history.Parse for the grammar), e.g.:
//
//	opacheck "w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"
//
// -demo prints one of the paper's built-in examples: fig1, fig2, h3, h4,
// counter, writers.
//
// -parallel N switches to streaming batch mode: arguments are files of
// histories (one per line; "-" or no arguments reads stdin), checked
// concurrently by N workers from internal/checkpool, and each input line
// yields exactly one verdict line on stdout, in input order. Inputs may
// be plain paths or storage URIs (file:///abs/path, mem://store/name),
// and -verdicts redirects the verdict stream to a storage URI written
// atomically — the object appears fully written or not at all, so a
// crashed or interrupted batch never leaves a partial verdict file:
//
//	opacheck -parallel 8 -verdicts file:///tmp/run/verdicts.log corpus.txt
//
//	histories.txt:3 opaque nodes=42 order="T1 T2"
//	histories.txt:4 non-opaque nodes=97
//	histories.txt:5 error parse: bad token "zzz"
//
// nodes= is the number of search nodes the completion-aware engine
// explored for that history; the per-history -maxnodes budget meters one
// unified search covering every completion. -reference switches the
// batch to the retained per-completion engine (an un-memoized search per
// completion, no partial-order reduction), so the node-count reduction
// of the unified engine is directly measurable on any corpus:
//
//	opacheck -parallel 8 corpus.txt            # nodes= from the unified engine
//	opacheck -parallel 8 -reference corpus.txt # nodes= from the reference
//
// -shared (batch mode, unified engine only) backs every worker by one
// pool-wide set of concurrent search tables instead of a private table
// set per worker: each distinct state is interned once for the whole
// batch and memo/transition entries are reused across workers. It is
// incompatible with -reference, which uses no search context at all.
//
// A summary — the total node count, plus the engine's table counters:
// per-worker search contexts by default, the pool-wide shared tables
// under -shared, and an explicit "no context counters" note under
// -reference — goes to stderr. Context-backed modes add a reductions
// line counting the symmetry classes the searches detected and the
// candidate placements skipped by the symmetry and incremental-legality
// reductions. The exit status is 1 if any line
// errored (parse failure, malformed history, search-budget exhaustion),
// else 0; non-opaque is a verdict, not an error. SIGINT/SIGTERM cancel
// the batch gracefully: already-admitted histories still get their
// verdict lines, then the summary reports the interruption and the exit
// status is 1.
//
// -cpuprofile and -memprofile write pprof profiles of the run (any
// mode), for digging into checker hot paths:
//
//	opacheck -parallel 8 -cpuprofile cpu.out corpus.txt
//	go tool pprof cpu.out
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"otm/internal/checkpool"
	"otm/internal/controlplane"
	"otm/internal/core"
	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/opg"
	"otm/internal/spec"
	"otm/internal/storage"
)

var demos = map[string]string{
	"fig1":    "w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2",
	"fig2":    "w2(x,1) w2(y,2) tryC2 inv1(x.read) C2 inv3(y.write,3) ret1(x.read)->1 w1(x,5) ret3(y.write)->ok r1(y)->2 tryC1 inv3(x.read) ret3(x.read)->1 tryC3 A1 C3",
	"h3":      "w1(x,1) tryC1 r2(x)->1",
	"h4":      "r1(x)->0 w2(x,5) w2(y,5) tryC2 r3(y)->5 r1(y)->0",
	"counter": "inc1(c)->ok inc2(c)->ok inc3(c)->ok tryC1 C1 tryC2 C2 tryC3 C3 get4(c)->3 tryC4 C4",
	"writers": "w1(x,1) w2(x,2) w1(y,1) w2(y,2) tryC1 C1 tryC2 C2 r3(x)->2 r3(y)->2 tryC3 C3",
}

func main() { os.Exit(run()) }

// run is main behind an exit code, so the pprof teardown deferred below
// executes before the process exits.
func run() int {
	counterObjs := flag.String("counter", "", "comma-separated object names to treat as counters (default: all registers)")
	graph := flag.Bool("graph", false, "also run the Theorem 2 graph characterization (register histories, adds T0)")
	explain := flag.Bool("explain", false, "for non-opaque histories, locate the violation and implicated transactions")
	demo := flag.String("demo", "", "check a built-in paper example: fig1|fig2|h3|h4|counter|writers")
	parallel := flag.Int("parallel", 0, "batch mode: check histories from files/stdin with N concurrent workers")
	maxNodes := flag.Int("maxnodes", 0, "batch mode: per-history search-node budget (0 = checker default)")
	reference := flag.Bool("reference", false, "batch mode: use the per-completion reference engine instead of the unified search (for node-count comparisons)")
	shared := flag.Bool("shared", false, "batch mode: share one pool-wide set of search tables across all workers (default: one private table set per worker)")
	verdicts := flag.String("verdicts", "", "batch mode: write the verdict stream to this storage URI (file:// or mem://) instead of stdout, committed atomically")
	replay := flag.String("replay", "", "re-check a violation artifact captured by the monitoring control plane (a path or storage URI) and confirm its verdict offline")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "opacheck: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "opacheck: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "opacheck: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "opacheck: -memprofile: %v\n", err)
			}
		}()
	}

	if *shared && *parallel <= 0 {
		fmt.Fprintln(os.Stderr, "opacheck: -shared requires -parallel")
		return 2
	}
	if *shared && *reference {
		fmt.Fprintln(os.Stderr, "opacheck: -shared is incompatible with -reference (the reference engine uses no search context)")
		return 2
	}
	if *replay != "" {
		if *parallel > 0 || *graph || *explain || *demo != "" {
			fmt.Fprintln(os.Stderr, "opacheck: -replay is incompatible with -parallel, -graph, -explain and -demo")
			return 2
		}
		return runReplay(*replay, *counterObjs, *maxNodes)
	}
	if *parallel > 0 {
		if *graph || *explain || *demo != "" {
			fmt.Fprintln(os.Stderr, "opacheck: -parallel is incompatible with -graph, -explain and -demo")
			return 2
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		code := runBatch(ctx, os.Stdout, os.Stderr, *parallel, *maxNodes, *reference, *shared, *counterObjs, *verdicts, flag.Args())
		stop()
		return code
	}

	var inputs []string
	switch {
	case *demo != "":
		src, ok := demos[*demo]
		if !ok {
			fmt.Fprintf(os.Stderr, "opacheck: unknown demo %q\n", *demo)
			os.Exit(2)
		}
		fmt.Printf("# demo %s\n", *demo)
		inputs = []string{src}
	case flag.NArg() > 0:
		inputs = flag.Args()
	default:
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				inputs = append(inputs, line)
			}
		}
	}

	exit := 0
	for _, src := range inputs {
		if err := checkOne(src, *counterObjs, *graph, *explain); err != nil {
			fmt.Fprintf(os.Stderr, "opacheck: %v\n", err)
			exit = 1
		}
		fmt.Println()
	}
	return exit
}

// runReplay is the -replay mode: decode a violation artifact captured
// by the monitoring control plane and re-derive its verdict with a
// fresh offline diagnosis — no state shared with the monitor that wrote
// it. Exit status: 0 when the replay confirms both the non-opaque
// verdict (at the recorded prefix length) and the culprit set, 1 on any
// mismatch, a non-replayable artifact (the capturing session truncated
// before the violation) or an error.
func runReplay(uri, counterObjs string, maxNodes int) int {
	rc, err := storage.OpenURI(uri)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opacheck: -replay: %v\n", err)
		return 1
	}
	defer rc.Close()
	a, err := controlplane.ParseArtifact(rc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "opacheck: -replay: %v\n", err)
		return 1
	}
	fmt.Printf("artifact: session %s, prefix %d, event %s", a.Session, a.PrefixLen, a.Event)
	if a.Diagnosed {
		fmt.Printf(", culprits %s", txids(a.Culprits))
	}
	fmt.Println()
	out, err := a.Replay(core.Config{
		Objects:  counterObjects(counterObjs),
		MaxNodes: maxNodes,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "opacheck: -replay: %v\n", err)
		return 1
	}
	d := out.Diagnosis
	switch {
	case d.Opaque:
		fmt.Println("replay: opaque — MISMATCH (the monitor saw a violation, the offline checker does not)")
	case !out.VerdictMatches:
		fmt.Printf("replay: non-opaque at prefix %d — MISMATCH (artifact recorded prefix %d)\n", d.PrefixLen, a.PrefixLen)
	default:
		fmt.Printf("replay: non-opaque at prefix %d, culprits %s\n", d.PrefixLen, txids(d.Implicated))
	}
	if out.Confirmed() {
		fmt.Println("CONFIRMED: the offline replay re-derives the captured verdict")
		return 0
	}
	if out.VerdictMatches && !out.CulpritsMatch {
		fmt.Printf("MISMATCH: culprit sets differ (capture %s, replay %s)\n", txids(a.Culprits), txids(d.Implicated))
	}
	return 1
}

// txids renders a transaction set in the T<n> form of verdict lines.
func txids(txs []history.TxID) string {
	parts := make([]string, len(txs))
	for i, tx := range txs {
		parts[i] = fmt.Sprintf("T%d", int(tx))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// counterObjects builds the object environment implied by the -counter
// flag: the named objects are counters; everything else defaults to a
// register initialized to 0 inside the checkers.
func counterObjects(counterObjs string) spec.Objects {
	objs := spec.Objects{}
	for _, name := range strings.Split(counterObjs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			objs[history.ObjID(name)] = spec.NewCounter(0)
		}
	}
	return objs
}

// runBatch is the -parallel mode: stream histories from the given files
// (paths or storage URIs; "-" or no arguments reads stdin), check them
// on a checkpool of the given width, and print one verdict line per
// input line, in input order; the summary lines go to errW. With a
// -verdicts URI the verdict stream goes to that storage object instead
// of out, committed atomically on success — a failed or interrupted run
// leaves no partial verdict object behind. Sink write failures propagate
// through checkpool.RunTo: the run stops early, the object is aborted,
// and the error is reported. Cancelling ctx (SIGINT / SIGTERM) stops
// admission; verdicts for already-admitted histories are still written.
// It returns the process exit code.
func runBatch(ctx context.Context, out, errW io.Writer, workers, maxNodes int, reference, shared bool, counterObjs, verdicts string, paths []string) int {
	var stats core.Stats
	opts := checkpool.Options{
		Workers: workers,
		Config: core.Config{
			Objects:     counterObjects(counterObjs),
			MaxNodes:    maxNodes,
			DisableMemo: reference,
		},
		Stats: &stats,
	}
	if shared {
		opts.SharedContext = core.NewSharedTables()
	}
	pool := checkpool.New(opts)

	in := make(chan checkpool.Item)
	go func() {
		defer close(in)
		if len(paths) == 0 {
			paths = []string{"-"}
		}
		for _, path := range paths {
			if path == "-" {
				feedLines(in, os.Stdin, "stdin")
				continue
			}
			r, err := storage.OpenURI(path)
			if err != nil {
				in <- checkpool.Item{Source: path, Err: err}
				continue
			}
			feedLines(in, r, path)
			r.Close()
		}
	}()

	var sinkObj storage.Writer
	w := bufio.NewWriter(out)
	if verdicts != "" {
		var err error
		if sinkObj, err = storage.CreateURI(verdicts); err != nil {
			fmt.Fprintf(errW, "opacheck: -verdicts: %v\n", err)
			return 2
		}
		w = bufio.NewWriter(sinkObj)
	}

	opaque, nonOpaque, errored := 0, 0, 0
	totalNodes := 0
	runErr := pool.RunTo(ctx, in, func(v checkpool.Verdict) error {
		totalNodes += v.Result.Nodes
		switch {
		case v.Err != nil:
			errored++
		case v.Result.Opaque:
			opaque++
		default:
			nonOpaque++
		}
		_, err := w.WriteString(v.Line() + "\n")
		return err
	})
	flushErr := w.Flush()
	if sinkObj != nil {
		// An incomplete verdict stream — sink failure, interruption —
		// must not commit a partial verdict object.
		if runErr != nil || flushErr != nil {
			sinkObj.Abort()
		} else if err := sinkObj.Close(); err != nil {
			fmt.Fprintf(errW, "opacheck: -verdicts: %v\n", err)
			return 1
		}
	}
	if runErr != nil && ctx.Err() == nil {
		fmt.Fprintf(errW, "opacheck: verdict sink: %v\n", runErr)
	}
	fmt.Fprintf(errW, "opacheck: %d histories: %d opaque, %d non-opaque, %d errors; %d search nodes\n",
		opaque+nonOpaque+errored, opaque, nonOpaque, errored, totalNodes)
	// The counter line names the tables it reports on. The reference
	// engine runs without search contexts, so it gets an explicit note
	// instead of a zeroed counter line mislabeled as context stats.
	switch {
	case reference:
		fmt.Fprintln(errW, "opacheck: reference engine: no search contexts (context counters not collected)")
	case shared:
		fmt.Fprintf(errW, "opacheck: shared tables: %d states interned (%d object atoms), %d memo entries (%d hits, %d misses), %d transitions cached (%d hits), %d rebuilds\n",
			stats.States, stats.Atoms, stats.MemoEntries, stats.MemoHits, stats.MemoMisses, stats.TransMisses, stats.TransHits, stats.Flushes)
		fmt.Fprintf(errW, "opacheck: reductions: %d symmetry classes, %d sym prunes, %d legality skips\n",
			stats.SymClasses, stats.SymPrunes, stats.LegalSkips)
	default:
		fmt.Fprintf(errW, "opacheck: contexts: %d states interned (%d object atoms), %d memo entries (%d hits), %d transitions cached (%d hits)\n",
			stats.States, stats.Atoms, stats.MemoEntries, stats.MemoHits, stats.TransMisses, stats.TransHits)
		fmt.Fprintf(errW, "opacheck: reductions: %d symmetry classes, %d sym prunes, %d legality skips\n",
			stats.SymClasses, stats.SymPrunes, stats.LegalSkips)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(errW, "opacheck: interrupted; remaining input skipped")
		return 1
	}
	if runErr != nil || flushErr != nil || errored > 0 {
		return 1
	}
	return 0
}

// feedLines parses each non-blank, non-comment line of r into a batch
// item labeled "name:lineno". Parse failures become errored items so the
// verdict stream stays aligned with the input. Lines are read without a
// length cap (a bufio.Reader, not a Scanner), so one oversized line
// cannot silently swallow the rest of its file.
func feedLines(in chan<- checkpool.Item, r io.Reader, name string) {
	br := bufio.NewReader(r)
	for lineno := 1; ; lineno++ {
		line, err := br.ReadString('\n')
		if line != "" {
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "#") {
				item := checkpool.Item{Source: fmt.Sprintf("%s:%d", name, lineno)}
				item.History, item.Err = history.Parse(line)
				in <- item
			}
		}
		if err == io.EOF {
			return
		}
		if err != nil {
			in <- checkpool.Item{Source: fmt.Sprintf("%s:%d", name, lineno), Err: err}
			return
		}
	}
}

func checkOne(src, counterObjs string, graph, explain bool) error {
	h, err := history.Parse(src)
	if err != nil {
		return err
	}
	if err := h.WellFormed(); err != nil {
		return err
	}
	fmt.Println(h.Format())

	objs := counterObjects(counterObjs)
	for _, ob := range h.Objects() {
		if _, ok := objs[ob]; !ok {
			objs[ob] = spec.NewRegister(0)
		}
	}

	rep, err := criteria.Evaluate(h, objs)
	if err != nil {
		return err
	}
	fmt.Print(rep)

	if explain && !rep.Opaque {
		d, err := core.Diagnose(h, core.Config{Objects: objs})
		if err != nil {
			return fmt.Errorf("diagnose: %w", err)
		}
		fmt.Println(d)
	}

	if graph {
		gh := h
		if !h.Contains(opg.InitTx) {
			gh = opg.WithInit(h, 0)
		}
		res, err := opg.CheckTheorem2(gh)
		if err != nil {
			return fmt.Errorf("theorem 2: %w", err)
		}
		switch {
		case !res.Consistent:
			fmt.Printf("theorem2: inconsistent (%v)\n", res.Reason)
		case res.Opaque:
			fmt.Printf("theorem2: opaque; witness order %v, V=%v\ngraph:\n%s",
				res.Order, res.V, res.Graph)
		default:
			fmt.Println("theorem2: no acyclic well-formed opacity graph exists")
		}
	}
	return nil
}
