// Command opacheck checks transactional histories against opacity and
// the weaker correctness criteria of the paper's §3, and prints the
// opacity graph of the Theorem 2 characterization.
//
// Usage:
//
//	opacheck [-counter obj] [-graph] [-demo name] [history...]
//
// Histories are given as arguments or read from stdin (one per line; see
// internal/history.Parse for the grammar), e.g.:
//
//	opacheck "w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2"
//
// -demo prints one of the paper's built-in examples: fig1, fig2, h3, h4,
// counter, writers.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"otm/internal/core"
	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/opg"
	"otm/internal/spec"
)

var demos = map[string]string{
	"fig1":    "w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2",
	"fig2":    "w2(x,1) w2(y,2) tryC2 inv1(x.read) C2 inv3(y.write,3) ret1(x.read)->1 w1(x,5) ret3(y.write)->ok r1(y)->2 tryC1 inv3(x.read) ret3(x.read)->1 tryC3 A1 C3",
	"h3":      "w1(x,1) tryC1 r2(x)->1",
	"h4":      "r1(x)->0 w2(x,5) w2(y,5) tryC2 r3(y)->5 r1(y)->0",
	"counter": "inc1(c)->ok inc2(c)->ok inc3(c)->ok tryC1 C1 tryC2 C2 tryC3 C3 get4(c)->3 tryC4 C4",
	"writers": "w1(x,1) w2(x,2) w1(y,1) w2(y,2) tryC1 C1 tryC2 C2 r3(x)->2 r3(y)->2 tryC3 C3",
}

func main() {
	counterObjs := flag.String("counter", "", "comma-separated object names to treat as counters (default: all registers)")
	graph := flag.Bool("graph", false, "also run the Theorem 2 graph characterization (register histories, adds T0)")
	explain := flag.Bool("explain", false, "for non-opaque histories, locate the violation and implicated transactions")
	demo := flag.String("demo", "", "check a built-in paper example: fig1|fig2|h3|h4|counter|writers")
	flag.Parse()

	var inputs []string
	switch {
	case *demo != "":
		src, ok := demos[*demo]
		if !ok {
			fmt.Fprintf(os.Stderr, "opacheck: unknown demo %q\n", *demo)
			os.Exit(2)
		}
		fmt.Printf("# demo %s\n", *demo)
		inputs = []string{src}
	case flag.NArg() > 0:
		inputs = flag.Args()
	default:
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				inputs = append(inputs, line)
			}
		}
	}

	exit := 0
	for _, src := range inputs {
		if err := checkOne(src, *counterObjs, *graph, *explain); err != nil {
			fmt.Fprintf(os.Stderr, "opacheck: %v\n", err)
			exit = 1
		}
		fmt.Println()
	}
	os.Exit(exit)
}

func checkOne(src, counterObjs string, graph, explain bool) error {
	h, err := history.Parse(src)
	if err != nil {
		return err
	}
	if err := h.WellFormed(); err != nil {
		return err
	}
	fmt.Println(h.Format())

	objs := spec.Objects{}
	for _, name := range strings.Split(counterObjs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			objs[history.ObjID(name)] = spec.NewCounter(0)
		}
	}
	for _, ob := range h.Objects() {
		if _, ok := objs[ob]; !ok {
			objs[ob] = spec.NewRegister(0)
		}
	}

	rep, err := criteria.Evaluate(h, objs)
	if err != nil {
		return err
	}
	fmt.Print(rep)

	if explain && !rep.Opaque {
		d, err := core.Diagnose(h, core.Config{Objects: objs})
		if err != nil {
			return fmt.Errorf("diagnose: %w", err)
		}
		fmt.Println(d)
	}

	if graph {
		gh := h
		if !h.Contains(opg.InitTx) {
			gh = opg.WithInit(h, 0)
		}
		res, err := opg.CheckTheorem2(gh)
		if err != nil {
			return fmt.Errorf("theorem 2: %w", err)
		}
		switch {
		case !res.Consistent:
			fmt.Printf("theorem2: inconsistent (%v)\n", res.Reason)
		case res.Opaque:
			fmt.Printf("theorem2: opaque; witness order %v, V=%v\ngraph:\n%s",
				res.Order, res.V, res.Graph)
		default:
			fmt.Println("theorem2: no acyclic well-formed opacity graph exists")
		}
	}
	return nil
}
