package main

import (
	"testing"

	"otm/internal/controlplane"
	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/storage"
)

// captureZombieArtifact runs the §2 zombie schedule through a monitor
// session and returns the violation as an artifact.
func captureZombieArtifact(t *testing.T) *controlplane.Artifact {
	t.Helper()
	var got *monitor.Violation
	s := monitor.New(monitor.Options{OnViolation: func(v monitor.Violation) { got = &v }})
	zombie := history.History{
		history.Inv(1, "x", "read", nil), history.Ret(1, "x", "read", 0),
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.Inv(2, "y", "write", 1), history.Ret(2, "y", "write", history.OK),
		history.TryC(2), history.Commit(2),
		history.Inv(1, "y", "read", nil), history.Ret(1, "y", "read", 1),
	}
	for _, ev := range zombie {
		s.Append(ev)
	}
	s.Close()
	if got == nil {
		t.Fatal("no violation captured")
	}
	return controlplane.NewArtifact("cli-test", *got)
}

func writeArtifact(t *testing.T, uri string, a *controlplane.Artifact) {
	t.Helper()
	w, err := storage.CreateURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(a.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplayConfirms(t *testing.T) {
	a := captureZombieArtifact(t)
	writeArtifact(t, "mem://opacheck-replay-test/ok.hist", a)
	if code := runReplay("mem://opacheck-replay-test/ok.hist", "", 0); code != 0 {
		t.Fatalf("exit %d, want 0 (confirmed)", code)
	}
}

func TestRunReplayMismatch(t *testing.T) {
	a := captureZombieArtifact(t)
	a.PrefixLen-- // tamper: the recorded violation position is now wrong
	writeArtifact(t, "mem://opacheck-replay-test/bad.hist", a)
	if code := runReplay("mem://opacheck-replay-test/bad.hist", "", 0); code != 1 {
		t.Fatalf("exit %d, want 1 (verdict mismatch)", code)
	}
}

func TestRunReplayRefusesTruncated(t *testing.T) {
	a := captureZombieArtifact(t)
	a.Replayable = false
	writeArtifact(t, "mem://opacheck-replay-test/trunc.hist", a)
	if code := runReplay("mem://opacheck-replay-test/trunc.hist", "", 0); code != 1 {
		t.Fatalf("exit %d, want 1 (not replayable)", code)
	}
}

func TestRunReplayErrors(t *testing.T) {
	if code := runReplay("mem://opacheck-replay-test/missing.hist", "", 0); code != 1 {
		t.Errorf("missing artifact: exit %d, want 1", code)
	}
	w, err := storage.CreateURI("mem://opacheck-replay-test/garbage.hist")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("not an artifact\n"))
	w.Close()
	if code := runReplay("mem://opacheck-replay-test/garbage.hist", "", 0); code != 1 {
		t.Errorf("garbage artifact: exit %d, want 1", code)
	}
}
