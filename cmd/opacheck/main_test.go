package main

import (
	"testing"

	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/spec"
)

// TestDemosParseAndVerdicts pins every built-in demo to its expected
// opacity verdict, so the CLI's showcase inputs cannot rot.
func TestDemosParseAndVerdicts(t *testing.T) {
	wantOpaque := map[string]bool{
		"fig1":    false,
		"fig2":    true,
		"h3":      true,
		"h4":      true,
		"counter": true,
		"writers": true,
	}
	for name, src := range demos {
		h, err := history.Parse(src)
		if err != nil {
			t.Fatalf("demo %s does not parse: %v", name, err)
		}
		if err := h.WellFormed(); err != nil {
			t.Fatalf("demo %s not well-formed: %v", name, err)
		}
		objs := spec.Objects{}
		if name == "counter" {
			objs["c"] = spec.NewCounter(0)
		}
		for _, ob := range h.Objects() {
			if _, ok := objs[ob]; !ok {
				objs[ob] = spec.NewRegister(0)
			}
		}
		rep, err := criteria.Evaluate(h, objs)
		if err != nil {
			t.Fatalf("demo %s: %v", name, err)
		}
		if rep.Opaque != wantOpaque[name] {
			t.Errorf("demo %s: opaque=%v, want %v", name, rep.Opaque, wantOpaque[name])
		}
	}
}

func TestCheckOneRejectsBadInput(t *testing.T) {
	if err := checkOne("garbage !!!", "", false, false); err == nil {
		t.Error("unparseable input must error")
	}
	if err := checkOne("C1", "", false, false); err == nil {
		t.Error("malformed history must error")
	}
}

func TestCheckOneRunsAllModes(t *testing.T) {
	if err := checkOne(demos["fig1"], "", true, true); err != nil {
		t.Errorf("fig1 with -graph -explain: %v", err)
	}
	if err := checkOne(demos["counter"], "c", false, false); err != nil {
		t.Errorf("counter demo with -counter c: %v", err)
	}
}
