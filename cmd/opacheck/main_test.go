package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/spec"
)

// TestDemosParseAndVerdicts pins every built-in demo to its expected
// opacity verdict, so the CLI's showcase inputs cannot rot.
func TestDemosParseAndVerdicts(t *testing.T) {
	wantOpaque := map[string]bool{
		"fig1":    false,
		"fig2":    true,
		"h3":      true,
		"h4":      true,
		"counter": true,
		"writers": true,
	}
	for name, src := range demos {
		h, err := history.Parse(src)
		if err != nil {
			t.Fatalf("demo %s does not parse: %v", name, err)
		}
		if err := h.WellFormed(); err != nil {
			t.Fatalf("demo %s not well-formed: %v", name, err)
		}
		objs := spec.Objects{}
		if name == "counter" {
			objs["c"] = spec.NewCounter(0)
		}
		for _, ob := range h.Objects() {
			if _, ok := objs[ob]; !ok {
				objs[ob] = spec.NewRegister(0)
			}
		}
		rep, err := criteria.Evaluate(h, objs)
		if err != nil {
			t.Fatalf("demo %s: %v", name, err)
		}
		if rep.Opaque != wantOpaque[name] {
			t.Errorf("demo %s: opaque=%v, want %v", name, rep.Opaque, wantOpaque[name])
		}
	}
}

func TestCheckOneRejectsBadInput(t *testing.T) {
	if err := checkOne("garbage !!!", "", false, false); err == nil {
		t.Error("unparseable input must error")
	}
	if err := checkOne("C1", "", false, false); err == nil {
		t.Error("malformed history must error")
	}
}

func TestCheckOneRunsAllModes(t *testing.T) {
	if err := checkOne(demos["fig1"], "", true, true); err != nil {
		t.Errorf("fig1 with -graph -explain: %v", err)
	}
	if err := checkOne(demos["counter"], "c", false, false); err != nil {
		t.Errorf("counter demo with -counter c: %v", err)
	}
}

// TestRunBatch exercises the -parallel streaming mode end to end: a file
// of histories (including a comment, a blank line, a parse error and a
// non-opaque history) yields one ordered verdict line each.
func TestRunBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "histories.txt")
	content := strings.Join([]string{
		"# comment lines are skipped",
		"w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2",
		"",
		demos["fig1"], // non-opaque
		"this is not a history",
		demos["h4"],
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, reference := range []bool{false, true} {
		var out strings.Builder
		if code := runBatch(context.Background(), &out, 4, 0, reference, "", []string{path}); code != 1 {
			t.Errorf("reference=%v: exit code %d, want 1 (one line fails to parse)", reference, code)
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		if len(lines) != 4 {
			t.Fatalf("reference=%v: %d verdict lines, want 4:\n%s", reference, len(lines), out.String())
		}
		for i, want := range []string{
			path + ":2 opaque ",
			path + ":4 non-opaque ",
			path + ":5 error ",
			path + ":6 opaque ",
		} {
			if !strings.HasPrefix(lines[i], want) {
				t.Errorf("reference=%v: line %d = %q, want prefix %q", reference, i, lines[i], want)
			}
		}
	}
}

// TestRunBatchCancelled: a pre-cancelled context admits nothing, yields
// no verdict lines and exits nonzero.
func TestRunBatchCancelled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(demos["fig2"]+"\n"+demos["h4"]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if code := runBatch(ctx, &out, 2, 0, false, "", []string{path}); code != 1 {
		t.Errorf("exit code %d, want 1 for a cancelled batch", code)
	}
	if out.Len() != 0 {
		t.Errorf("cancelled batch printed verdicts:\n%s", out.String())
	}
}

// TestRunBatchBudget: -maxnodes starves the search, turning every history
// into a budget error and a nonzero exit.
func TestRunBatchBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(demos["fig2"]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if code := runBatch(context.Background(), &out, 2, 1, false, "", []string{path}); code != 1 {
		t.Errorf("exit code %d, want 1 under a 1-node budget", code)
	}
	if !strings.Contains(out.String(), "error") {
		t.Errorf("expected a budget error line, got:\n%s", out.String())
	}
}

func TestRunBatchMissingFile(t *testing.T) {
	var out strings.Builder
	if code := runBatch(context.Background(), &out, 2, 0, false, "", []string{"/nonexistent/histories.txt"}); code != 1 {
		t.Errorf("exit code %d, want 1 for an unreadable file", code)
	}
}
