package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otm/internal/criteria"
	"otm/internal/history"
	"otm/internal/spec"
	"otm/internal/storage"
)

// TestDemosParseAndVerdicts pins every built-in demo to its expected
// opacity verdict, so the CLI's showcase inputs cannot rot.
func TestDemosParseAndVerdicts(t *testing.T) {
	wantOpaque := map[string]bool{
		"fig1":    false,
		"fig2":    true,
		"h3":      true,
		"h4":      true,
		"counter": true,
		"writers": true,
	}
	for name, src := range demos {
		h, err := history.Parse(src)
		if err != nil {
			t.Fatalf("demo %s does not parse: %v", name, err)
		}
		if err := h.WellFormed(); err != nil {
			t.Fatalf("demo %s not well-formed: %v", name, err)
		}
		objs := spec.Objects{}
		if name == "counter" {
			objs["c"] = spec.NewCounter(0)
		}
		for _, ob := range h.Objects() {
			if _, ok := objs[ob]; !ok {
				objs[ob] = spec.NewRegister(0)
			}
		}
		rep, err := criteria.Evaluate(h, objs)
		if err != nil {
			t.Fatalf("demo %s: %v", name, err)
		}
		if rep.Opaque != wantOpaque[name] {
			t.Errorf("demo %s: opaque=%v, want %v", name, rep.Opaque, wantOpaque[name])
		}
	}
}

func TestCheckOneRejectsBadInput(t *testing.T) {
	if err := checkOne("garbage !!!", "", false, false); err == nil {
		t.Error("unparseable input must error")
	}
	if err := checkOne("C1", "", false, false); err == nil {
		t.Error("malformed history must error")
	}
}

func TestCheckOneRunsAllModes(t *testing.T) {
	if err := checkOne(demos["fig1"], "", true, true); err != nil {
		t.Errorf("fig1 with -graph -explain: %v", err)
	}
	if err := checkOne(demos["counter"], "c", false, false); err != nil {
		t.Errorf("counter demo with -counter c: %v", err)
	}
}

// TestRunBatch exercises the -parallel streaming mode end to end: a file
// of histories (including a comment, a blank line, a parse error and a
// non-opaque history) yields one ordered verdict line each.
func TestRunBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "histories.txt")
	content := strings.Join([]string{
		"# comment lines are skipped",
		"w1(x,1) tryC1 C1 r2(x)->1 tryC2 C2",
		"",
		demos["fig1"], // non-opaque
		"this is not a history",
		demos["h4"],
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name              string
		reference, shared bool
	}{{name: "default"}, {name: "reference", reference: true}, {name: "shared", shared: true}} {
		var out, errOut strings.Builder
		code := runBatch(context.Background(), &out, &errOut, 4, 0, mode.reference, mode.shared, "", "", []string{path})
		if code != 1 {
			t.Errorf("%s: exit code %d, want 1 (one line fails to parse)", mode.name, code)
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		if len(lines) != 4 {
			t.Fatalf("%s: %d verdict lines, want 4:\n%s", mode.name, len(lines), out.String())
		}
		for i, want := range []string{
			path + ":2 opaque ",
			path + ":4 non-opaque ",
			path + ":5 error ",
			path + ":6 opaque ",
		} {
			if !strings.HasPrefix(lines[i], want) {
				t.Errorf("%s: line %d = %q, want prefix %q", mode.name, i, lines[i], want)
			}
		}
	}
}

// TestRunBatchSummaries pins the stderr summary of each engine mode: the
// default and shared modes report their (nonzero) table counters under
// the right label, and the reference mode — which runs without search
// contexts — says so explicitly instead of printing a zeroed counter
// line (the -parallel -reference mislabeling bug).
func TestRunBatchSummaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "histories.txt")
	// The last line holds two interchangeable readers, so the symmetry
	// counters of the reductions line are exercised, not just printed.
	content := demos["h4"] + "\n" + demos["fig1"] + "\n" + demos["writers"] + "\n" +
		"r1(x)->0 r2(x)->0 tryC1 C1 tryC2 C2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(reference, shared bool) string {
		t.Helper()
		var out, errOut strings.Builder
		if code := runBatch(context.Background(), &out, &errOut, 4, 0, reference, shared, "", "", []string{path}); code != 0 {
			t.Fatalf("reference=%v shared=%v: exit code %d, stderr:\n%s", reference, shared, code, errOut.String())
		}
		return errOut.String()
	}

	def := run(false, false)
	if !strings.Contains(def, "opacheck: 4 histories:") {
		t.Errorf("default summary lacks the totals line:\n%s", def)
	}
	if !strings.Contains(def, "opacheck: contexts: ") || strings.Contains(def, "contexts: 0 states interned") {
		t.Errorf("default summary must report nonzero per-worker context counters:\n%s", def)
	}
	if !strings.Contains(def, "opacheck: reductions: ") || strings.Contains(def, "reductions: 0 symmetry classes") {
		t.Errorf("default summary must report the symmetry class count of the clone input:\n%s", def)
	}

	ref := run(true, false)
	if !strings.Contains(ref, "opacheck: reference engine: no search contexts") {
		t.Errorf("reference summary must say no context counters were collected:\n%s", ref)
	}
	if strings.Contains(ref, "opacheck: contexts:") || strings.Contains(ref, "states interned") ||
		strings.Contains(ref, "opacheck: reductions:") {
		t.Errorf("reference summary must not print context counter lines:\n%s", ref)
	}

	sh := run(false, true)
	if !strings.Contains(sh, "opacheck: shared tables: ") || strings.Contains(sh, "shared tables: 0 states interned") {
		t.Errorf("shared summary must report nonzero pool-wide counters:\n%s", sh)
	}
	if !strings.Contains(sh, "rebuilds") {
		t.Errorf("shared summary must report the generation rebuild count:\n%s", sh)
	}
	if !strings.Contains(sh, "opacheck: reductions: ") || strings.Contains(sh, "reductions: 0 symmetry classes") {
		t.Errorf("shared summary must report the symmetry class count of the clone input:\n%s", sh)
	}
}

// TestRunBatchSharedMatchesDefault: the -shared engine yields verdict
// lines identical to the per-worker default on the same input.
func TestRunBatchSharedMatchesDefault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "histories.txt")
	content := strings.Join([]string{demos["h4"], demos["fig1"], demos["counter"], demos["writers"], demos["fig2"]}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var def, sh, errOut strings.Builder
	if code := runBatch(context.Background(), &def, &errOut, 4, 0, false, false, "", "", []string{path}); code != 0 {
		t.Fatalf("default: exit code %d", code)
	}
	if code := runBatch(context.Background(), &sh, &errOut, 4, 0, false, true, "", "", []string{path}); code != 0 {
		t.Fatalf("shared: exit code %d", code)
	}
	if def.String() != sh.String() {
		t.Errorf("shared verdict lines differ from default:\n--- default ---\n%s--- shared ---\n%s", def.String(), sh.String())
	}
}

// TestRunBatchCancelled: a pre-cancelled context admits nothing, yields
// no verdict lines and exits nonzero.
func TestRunBatchCancelled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(demos["fig2"]+"\n"+demos["h4"]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	if code := runBatch(ctx, &out, &errOut, 2, 0, false, false, "", "", []string{path}); code != 1 {
		t.Errorf("exit code %d, want 1 for a cancelled batch", code)
	}
	if out.Len() != 0 {
		t.Errorf("cancelled batch printed verdicts:\n%s", out.String())
	}
}

// TestRunBatchBudget: -maxnodes starves the search, turning every history
// into a budget error and a nonzero exit.
func TestRunBatchBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(demos["fig2"]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := runBatch(context.Background(), &out, &errOut, 2, 1, false, false, "", "", []string{path}); code != 1 {
		t.Errorf("exit code %d, want 1 under a 1-node budget", code)
	}
	if !strings.Contains(out.String(), "error") {
		t.Errorf("expected a budget error line, got:\n%s", out.String())
	}
}

func TestRunBatchMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := runBatch(context.Background(), &out, &errOut, 2, 0, false, false, "", "", []string{"/nonexistent/histories.txt"}); code != 1 {
		t.Errorf("exit code %d, want 1 for an unreadable file", code)
	}
}

// TestRunBatchStorageURIs: batch inputs may be storage URIs and
// -verdicts redirects the verdict stream to an atomically committed
// storage object; the object's bytes equal what the same run prints to
// stdout (modulo the source label, which is the URI as given).
func TestRunBatchStorageURIs(t *testing.T) {
	content := demos["h4"] + "\n" + demos["fig1"] + "\n"
	corpus := storage.Mem("opacheck-test-corpus")
	w, err := corpus.Create("histories.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, content); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	uri := "mem://opacheck-test-corpus/histories.txt"

	var out, errOut strings.Builder
	if code := runBatch(context.Background(), &out, &errOut, 2, 0, false, false, "", "", []string{uri}); code != 0 {
		t.Fatalf("URI input: exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), uri+":1 opaque ") {
		t.Errorf("verdict labels should carry the URI as given:\n%s", out.String())
	}

	// Same run again, with the verdicts going to a storage object.
	sinkURI := "mem://opacheck-test-corpus/verdicts.log"
	var out2, errOut2 strings.Builder
	if code := runBatch(context.Background(), &out2, &errOut2, 2, 0, false, false, "", sinkURI, []string{uri}); code != 0 {
		t.Fatalf("-verdicts run: exit %d, stderr:\n%s", code, errOut2.String())
	}
	if out2.Len() != 0 {
		t.Errorf("-verdicts run still wrote to stdout:\n%s", out2.String())
	}
	r, err := storage.OpenURI(sinkURI)
	if err != nil {
		t.Fatalf("verdict object not committed: %v", err)
	}
	got, _ := io.ReadAll(r)
	r.Close()
	if string(got) != out.String() {
		t.Errorf("verdict object differs from the stdout stream:\n%q\nvs\n%q", got, out.String())
	}
}

// TestRunBatchVerdictsNotCommittedOnInterrupt: a cancelled batch aborts
// the verdict object — resuming tools never see a partial log.
func TestRunBatchVerdictsNotCommittedOnInterrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(strings.Repeat(demos["h4"]+"\n", 50)), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sinkURI := "mem://opacheck-test-interrupt/verdicts.log"
	var out, errOut strings.Builder
	if code := runBatch(ctx, &out, &errOut, 2, 0, false, false, "", sinkURI, []string{path}); code != 1 {
		t.Errorf("interrupted run: exit %d, want 1", code)
	}
	if _, err := storage.OpenURI(sinkURI); err == nil {
		t.Error("interrupted run committed a verdict object")
	}
}
