package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"otm/internal/bench"
	"otm/internal/controlplane"
	"otm/internal/monitor"
	"otm/internal/stm"
	"otm/internal/stm/gatm"
)

// monitorCmd is `otmd monitor`: the monitoring control plane as a
// service. It runs a fleet of STM shards — each an engine instance under
// a recorder-tapped opacity monitor — serves the aggregated fleet
// telemetry on -listen (/metrics in Prometheus text format, /status as
// JSON), and on a violation captures a replayable artifact into
// -artifacts that `opacheck -replay` re-confirms offline.
//
// -inject adds one extra shard backed by gatm (global atomicity only,
// not opaque) and drives the §2 zombie schedule through it: a
// deterministic violation for smoke tests and demos. The injected
// shard's session never truncates, so its artifact is always
// replayable.
//
// Exit status: 0 when the fleet closes opaque, 1 when it closes
// violated, lossy or errored (or startup fails), 2 on usage errors.
func monitorCmd(args []string) int {
	fs := flag.NewFlagSet("otmd monitor", flag.ExitOnError)
	sessions := fs.Int("sessions", 4, "workload shards (one monitored engine instance each)")
	engine := fs.String("engine", "tl2", "engine per shard (see tmbench: dstm, tl2, tl2x, vstm, mvstm, gatm, sistm)")
	goroutines := fs.Int("g", 4, "goroutines per shard")
	txPerG := fs.Int("tx", 500, "transactions per goroutine")
	opsPerTx := fs.Int("ops", 8, "operations per transaction")
	k := fs.Int("k", 4, "objects per shard")
	readFrac := fs.Float64("read", 0.9, "fraction of operations that are reads")
	modeName := fs.String("mode", "async", "monitor mode: sync or async")
	buffer := fs.Int("buffer", 4096, "async queue capacity")
	drop := fs.Bool("drop", false, "async backpressure policy: drop events instead of blocking")
	stopAll := fs.Bool("stop-all", false, "stop the whole fleet on the first violation")
	truncAfter := fs.Int("trunc-after", 128, "checkpointed truncation threshold in live events (0 = off)")
	listen := fs.String("listen", "127.0.0.1:8099", "telemetry listen address (/metrics, /status)")
	artifacts := fs.String("artifacts", "", "storage URI for violation artifacts (file:///dir or mem://name; empty = no capture)")
	inject := fs.Bool("inject", false, "add a gatm shard and inject the §2 zombie schedule (deterministic violation)")
	serveAfter := fs.Duration("serve-after", 0, "keep serving telemetry this long after the workload finishes")
	fs.Parse(args)

	var mode monitor.Mode
	switch *modeName {
	case "sync":
		mode = monitor.Sync
	case "async":
		mode = monitor.Async
	default:
		fmt.Fprintf(os.Stderr, "otmd monitor: -mode must be sync or async, got %q\n", *modeName)
		return 2
	}
	var eng *bench.Engine
	for _, e := range bench.Engines() {
		if e.Name == *engine {
			eng = &e
			break
		}
	}
	if eng == nil {
		fmt.Fprintf(os.Stderr, "otmd monitor: unknown engine %q\n", *engine)
		return 2
	}

	mopts := monitor.Options{Mode: mode, Buffer: *buffer, TruncateAfterEvents: *truncAfter}
	if *truncAfter > 0 {
		// Continuous workloads rarely quiesce on their own; the barrier
		// bounds the live suffix (and per-event cost) by stalling new
		// transactions once the suffix is 4x overdue.
		mopts.TruncateBarrier = 4 * *truncAfter
	}
	if *drop {
		mopts.DropPolicy = monitor.Drop
	}
	policy := controlplane.StopOne
	if *stopAll {
		policy = controlplane.StopAll
	}
	fleet, err := controlplane.New(controlplane.Options{
		Monitor:      mopts,
		Stop:         policy,
		ArtifactsURI: *artifacts,
		OnViolation: func(session string, r controlplane.ViolationRecord) {
			fmt.Fprintf(os.Stderr, "otmd: VIOLATION in %s at prefix %d (%s)", session, r.PrefixLen, r.Event)
			if r.Diagnosed {
				fmt.Fprintf(os.Stderr, ", culprits %v", r.Culprits)
			}
			if r.Artifact != "" {
				fmt.Fprintf(os.Stderr, "; artifact %s", r.Artifact)
			}
			if r.CaptureErr != "" {
				fmt.Fprintf(os.Stderr, "; CAPTURE FAILED: %s", r.CaptureErr)
			}
			fmt.Fprintln(os.Stderr)
		},
	})
	if err != nil {
		return fail(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{Handler: fleet.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "otmd: monitoring %d %s shards on http://%s (mode %s, policy %s)\n",
		*sessions, eng.Name, ln.Addr(), *modeName, policy)

	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		rec := stm.NewRecorder(eng.New(*k))
		m, err := fleet.Attach(fmt.Sprintf("shard-%d", i), rec)
		if err != nil {
			return fail(err)
		}
		for g := 0; g < *goroutines; g++ {
			wg.Add(1)
			go func(shard, g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(shard*1000 + g)))
				val := shard*1_000_000 + g*10_000
				for n := 0; n < *txPerG; n++ {
					_ = stm.Atomically(rec, func(tx stm.Tx) error {
						for o := 0; o < *opsPerTx; o++ {
							obj := rng.Intn(*k)
							if rng.Float64() < *readFrac {
								if _, err := tx.Read(obj); err != nil {
									return err
								}
							} else {
								val++
								if err := tx.Write(obj, val); err != nil {
									return err
								}
							}
						}
						return nil
					})
				}
			}(i, g)
		}
		_ = m
	}
	if *inject {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := injectZombie(fleet, mode, *buffer); err != nil {
				fmt.Fprintf(os.Stderr, "otmd: inject: %v\n", err)
			}
		}()
	}
	wg.Wait()

	if *serveAfter > 0 {
		fmt.Fprintf(os.Stderr, "otmd: workload done; serving telemetry for %s\n", *serveAfter)
		time.Sleep(*serveAfter)
	}
	st := fleet.Close()
	fmt.Fprintf(os.Stderr, "otmd: fleet closed: %d sessions, %d events (%d checked, %d dropped), %d checkpoints, %d violations, status %s\n",
		st.Sessions, st.Events, st.Checked, st.Dropped, st.Checkpoints, st.Violations, st.FleetStatus)
	if st.First != nil {
		fmt.Fprintf(os.Stderr, "otmd: first violation: session %s, prefix %d, artifact %q\n",
			st.First.Session, st.First.PrefixLen, st.First.Artifact)
	}
	if st.Fleet != monitor.StatusOpaque {
		return 1
	}
	return 0
}

// injectZombie adds a gatm-backed member and replays the §2 schedule:
// T1 reads r0, T2 commits r0=1 and r1=1, T1 reads r1 and observes the
// new value against its stale snapshot — non-opaque at that read. The
// member's session never truncates, so the captured artifact retains
// the full prefix and replays offline.
func injectZombie(fleet *controlplane.Fleet, mode monitor.Mode, buffer int) error {
	rec := stm.NewRecorder(gatm.New(2))
	m, err := fleet.AttachWith("inject", rec, monitor.Options{Mode: mode, Buffer: buffer})
	if err != nil {
		return err
	}
	t1 := rec.Begin()
	if _, err := t1.Read(0); err != nil {
		return fmt.Errorf("reader's first read aborted: %w", err)
	}
	t2 := rec.Begin()
	if err := t2.Write(0, 1); err != nil {
		return err
	}
	if err := t2.Write(1, 1); err != nil {
		return err
	}
	if err := t2.Commit(); err != nil {
		return err
	}
	if _, err := t1.Read(1); err != nil {
		return fmt.Errorf("zombie read was refused (engine %s is stricter than expected): %w", "gatm", err)
	}
	_ = t1.Commit()
	// An async session may still be draining; Close waits for the queue
	// so the violation is latched before the workload barrier falls.
	v := m.Close()
	if v.Status != monitor.StatusViolated {
		return fmt.Errorf("injected schedule closed %s, want a violation", v.Status)
	}
	return nil
}
