package main

import (
	"testing"

	"otm/internal/controlplane"
	"otm/internal/core"
	"otm/internal/storage"
)

// TestMonitorCmdInject is the control-plane e2e in process: run a small
// fleet with an injected zombie, assert the violating exit status, then
// re-check the captured artifact offline and require confirmation.
func TestMonitorCmdInject(t *testing.T) {
	code := monitorCmd([]string{
		"-sessions", "1", "-g", "2", "-tx", "20",
		"-listen", "127.0.0.1:0",
		"-artifacts", "mem://otmd-monitor-inject-test",
		"-inject",
	})
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (violated fleet)", code)
	}
	fsys, err := storage.Resolve("mem://otmd-monitor-inject-test")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := fsys.Open("violations/000-inject.hist")
	if err != nil {
		t.Fatalf("artifact not captured: %v", err)
	}
	defer rc.Close()
	a, err := controlplane.ParseArtifact(rc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Session != "inject" || !a.Replayable {
		t.Fatalf("artifact %+v", a)
	}
	out, err := a.Replay(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Confirmed() {
		t.Fatalf("offline replay does not confirm the injected violation: %+v", out)
	}
}

// TestMonitorCmdOpaque: a clean tl2 fleet exits 0.
func TestMonitorCmdOpaque(t *testing.T) {
	code := monitorCmd([]string{
		"-sessions", "2", "-g", "2", "-tx", "10",
		"-listen", "127.0.0.1:0",
	})
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (opaque fleet)", code)
	}
}

func TestMonitorCmdUsageErrors(t *testing.T) {
	if code := monitorCmd([]string{"-mode", "bogus"}); code != 2 {
		t.Errorf("bad -mode: exit %d, want 2", code)
	}
	if code := monitorCmd([]string{"-engine", "bogus"}); code != 2 {
		t.Errorf("bad -engine: exit %d, want 2", code)
	}
}
