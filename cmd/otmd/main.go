// Command otmd is the distributed batch checker: a coordinator that
// shards a history corpus and leases the shards out, workers that check
// leased shards on the internal/checkpool engine, and a single-process
// convenience mode that wires both together.
//
// Usage:
//
//	otmd coordinate -store URI (-corpus FILE | -gen N [...]) [-listen ADDR] [-o FILE]
//	otmd work -coordinator URL [-name ID] [-parallel W] [-shared]
//	otmd run -workers N (-corpus FILE | -gen N [...]) [-shared] [-o FILE]
//	otmd monitor [-sessions N] [-engine E] [-listen ADDR] [-artifacts URI] [-inject]
//
// `otmd monitor` is the online half: a fleet of monitored STM shards
// with live telemetry and replayable violation capture — see monitor.go.
//
// # Coordinate
//
// `otmd coordinate` plans the corpus into the store (a storage URI such
// as file:///tmp/run1 or mem://scratch; plain paths mean file://), or
// resumes if the store already holds a manifest: shards with a committed
// done marker are final and are never re-checked — after a crash the run
// continues exactly where the checkpoint says it stopped. It serves the
// lease API on -listen and streams the merged verdict log — shard order,
// byte-identical to a single-process `opacheck -parallel` run over the
// same corpus — to stdout (or -o). Planning flags mirror cmd/histgen
// (-gen/-seed/-txs/-objs/-ops/-stale/-init) and cmd/opacheck
// (-counter/-maxnodes).
//
// # Work
//
// `otmd work` attaches one worker to a coordinator and checks leased
// shards until the run completes; add workers (across machines, if the
// store URI is reachable from all of them) to scale out. -parallel
// widens the worker's own checkpool; -shared backs all of its shards by
// one set of shared search tables, the `opacheck -shared` engine. The
// per-worker summary and table counters go to stderr, in opacheck's
// format.
//
// # Run
//
// `otmd run -workers N` is the whole service in one process: plan into
// an in-memory store, run N workers against a loopback coordinator,
// merge to stdout. It is the smoke-test and benchmarking mode; a
// two-terminal run uses coordinate + work with a file:// store.
//
// Exit status: 0 on a completed run with no errored histories, 1 on
// errored histories, a failed run, or interruption (the checkpoint
// survives; re-run `otmd coordinate` with the same store to resume), 2
// on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"otm/internal/core"
	"otm/internal/dist"
	"otm/internal/storage"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "coordinate":
		return coordinate(args[1:])
	case "work":
		return work(args[1:])
	case "run":
		return runLocal(args[1:])
	case "monitor":
		return monitorCmd(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "otmd: unknown command %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  otmd coordinate -store URI (-corpus FILE | -gen N [...]) [-listen ADDR] [-o FILE]
  otmd work -coordinator URL [-name ID] [-parallel W] [-shared]
  otmd run -workers N (-corpus FILE | -gen N [...]) [-shared] [-o FILE]
  otmd monitor [-sessions N] [-engine E] [-listen ADDR] [-artifacts URI] [-inject] [...]
`)
}

// planFlags are the corpus/checker flags shared by coordinate and run;
// they mirror cmd/histgen and cmd/opacheck.
type planFlags struct {
	corpus    string
	genN      int
	seed      int64
	txs       int
	objs      int
	maxOps    int
	stale     float64
	withInit  bool
	shardSize int
	label     string
	runID     string
	counter   string
	maxNodes  int
}

func (p *planFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&p.corpus, "corpus", "", "corpus file to shard (a path or storage URI)")
	fs.IntVar(&p.genN, "gen", 0, "generate a corpus of N histories instead of reading -corpus")
	fs.Int64Var(&p.seed, "seed", 1, "generator base seed (history i uses seed+i)")
	fs.IntVar(&p.txs, "txs", 4, "generator: transactions per history")
	fs.IntVar(&p.objs, "objs", 2, "generator: registers per history")
	fs.IntVar(&p.maxOps, "ops", 3, "generator: max operations per transaction")
	fs.Float64Var(&p.stale, "stale", 0.25, "generator: probability of adversarial read values")
	fs.BoolVar(&p.withInit, "init", false, "generator: prepend the initializing transaction T0")
	fs.IntVar(&p.shardSize, "shard-size", 256, "corpus lines (or generated histories) per shard")
	fs.StringVar(&p.label, "label", "", "verdict source label (default: the corpus path, or \"gen\")")
	fs.StringVar(&p.runID, "run-id", "", "run identifier recorded in the manifest")
	fs.StringVar(&p.counter, "counter", "", "comma-separated object names to treat as counters")
	fs.IntVar(&p.maxNodes, "maxnodes", 0, "per-history search-node budget (0 = checker default)")
}

func (p *planFlags) options() dist.PlanOptions {
	opts := dist.PlanOptions{
		CorpusURI:   p.corpus,
		Label:       p.label,
		ShardSize:   p.shardSize,
		CounterObjs: p.counter,
		MaxNodes:    p.maxNodes,
		RunID:       p.runID,
	}
	if p.genN > 0 {
		opts.Gen = &dist.GenSpec{
			N: p.genN, Seed: p.seed, Txs: p.txs, Objs: p.objs,
			MaxOps: p.maxOps, PStaleRead: p.stale, WithInit: p.withInit,
		}
	}
	return opts
}

// planOrResume loads the store's manifest if one is committed, otherwise
// plans a fresh run from the flags.
func planOrResume(store storage.FS, p *planFlags, logf func(string, ...any)) (*dist.Manifest, *dist.Checkpoint, error) {
	man, err := dist.LoadManifest(store)
	switch {
	case err == nil:
		logf("otmd: resuming run %s from the store's manifest", man.Run)
	case errors.Is(err, dist.ErrNoManifest):
		if man, err = dist.Plan(store, p.options()); err != nil {
			return nil, nil, err
		}
		logf("otmd: planned run %s: %d shards", man.Run, len(man.Shards))
	default:
		return nil, nil, err
	}
	cp, err := dist.LoadCheckpoint(store, man)
	if err != nil {
		return nil, nil, err
	}
	return man, cp, nil
}

func coordinate(args []string) int {
	fs := flag.NewFlagSet("otmd coordinate", flag.ExitOnError)
	var p planFlags
	p.register(fs)
	storeURI := fs.String("store", "", "shared run store URI (file:///path or mem://name); required")
	listen := fs.String("listen", "127.0.0.1:8077", "lease API listen address")
	out := fs.String("o", "", "write the merged verdict log here instead of stdout")
	leaseFor := fs.Duration("lease", 30*time.Second, "shard lease duration (heartbeats extend it)")
	retries := fs.Int("retries", 3, "max requeues per shard before the run fails")
	linger := fs.Duration("linger", 2*time.Second, "keep serving after the merge completes so workers observe the run's end")
	verbose := fs.Bool("v", false, "log shard-level progress to stderr")
	fs.Parse(args)
	if *storeURI == "" {
		fmt.Fprintln(os.Stderr, "otmd coordinate: -store is required")
		return 2
	}
	logf := logger(*verbose)

	store, err := storage.Resolve(*storeURI)
	if err != nil {
		return fail(err)
	}
	man, cp, err := planOrResume(store, &p, logf)
	if err != nil {
		return fail(err)
	}
	c := dist.NewCoordinator(store, man, cp, dist.CoordinatorOptions{
		StoreURI:   *storeURI,
		LeaseFor:   *leaseFor,
		MaxRetries: *retries,
		Logf:       logf,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "otmd: coordinating run %s on http://%s (%d/%d shards done)\n",
		man.Run, ln.Addr(), cp.NumDone(), len(man.Shards))

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	merged := make(chan error, 1)
	go func() { merged <- c.MergeTo(w) }()
	select {
	case err := <-merged:
		if err != nil {
			return fail(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "otmd: interrupted; checkpoint is durable — re-run coordinate with the same store to resume")
		return 1
	}

	st := c.Status()
	fmt.Fprintf(os.Stderr, "otmd: run %s complete: %d shards, %d histories: %d opaque, %d non-opaque, %d errors; %d search nodes, %d requeues, %.1fs\n",
		st.Run, st.Shards, st.Histories, st.Opaque, st.NonOpaque, st.Errored, st.Nodes, st.Retries, st.ElapsedSecs)
	// Give polling workers a beat to see Done before the API goes away.
	select {
	case <-time.After(*linger):
	case <-ctx.Done():
	}
	if st.Errored > 0 {
		return 1
	}
	return 0
}

func work(args []string) int {
	fs := flag.NewFlagSet("otmd work", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (e.g. http://127.0.0.1:8077); required")
	name := fs.String("name", "", "worker name in coordinator logs (default: host:pid)")
	parallel := fs.Int("parallel", 1, "checkpool workers per shard")
	shared := fs.Bool("shared", false, "share one set of search tables across all of this worker's shards")
	verbose := fs.Bool("v", false, "log shard-level progress to stderr")
	fs.Parse(args)
	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "otmd work: -coordinator is required")
		return 2
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &dist.Worker{
		Coordinator: *coordinator,
		Name:        *name,
		Parallel:    *parallel,
		Shared:      *shared,
		Logf:        logger(*verbose),
	}
	stats, err := w.Run(ctx)
	workerSummary(os.Stderr, *name, stats, *shared)
	if err != nil {
		return fail(err)
	}
	return 0
}

func runLocal(args []string) int {
	fs := flag.NewFlagSet("otmd run", flag.ExitOnError)
	var p planFlags
	p.register(fs)
	workers := fs.Int("workers", 2, "number of in-process workers")
	parallel := fs.Int("parallel", 1, "checkpool workers per shard, per worker")
	shared := fs.Bool("shared", false, "shared search tables within each worker")
	storeURI := fs.String("store", "", "run store URI (default: a fresh in-memory store)")
	out := fs.String("o", "", "write the merged verdict log here instead of stdout")
	verbose := fs.Bool("v", false, "log shard-level progress to stderr")
	fs.Parse(args)
	if *workers < 1 {
		fmt.Fprintln(os.Stderr, "otmd run: -workers must be ≥ 1")
		return 2
	}
	if *storeURI == "" {
		*storeURI = fmt.Sprintf("mem://otmd-run-%d", os.Getpid())
	}
	logf := logger(*verbose)

	store, err := storage.Resolve(*storeURI)
	if err != nil {
		return fail(err)
	}
	man, cp, err := planOrResume(store, &p, logf)
	if err != nil {
		return fail(err)
	}
	c := dist.NewCoordinator(store, man, cp, dist.CoordinatorOptions{StoreURI: *storeURI, Logf: logf})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		w = f
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	type workerDone struct {
		name  string
		stats dist.RunStats
		err   error
	}
	results := make([]workerDone, *workers)
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", i+1)
			wk := &dist.Worker{
				Coordinator: url,
				Name:        name,
				Parallel:    *parallel,
				Shared:      *shared,
				Logf:        logf,
			}
			stats, err := wk.Run(ctx)
			results[i] = workerDone{name, stats, err}
		}(i)
	}

	merged := make(chan error, 1)
	go func() { merged <- c.MergeTo(w) }()
	code := 0
	select {
	case err := <-merged:
		if err != nil {
			code = fail(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "otmd: interrupted")
		code = 1
	}
	wg.Wait()

	for _, r := range results {
		workerSummary(os.Stderr, r.name, r.stats, *shared)
		if r.err != nil && code == 0 {
			code = fail(r.err)
		}
	}
	st := c.Status()
	fmt.Fprintf(os.Stderr, "otmd: run %s complete: %d shards, %d histories: %d opaque, %d non-opaque, %d errors; %d search nodes, %d requeues, %.1fs\n",
		st.Run, st.Shards, st.Histories, st.Opaque, st.NonOpaque, st.Errored, st.Nodes, st.Retries, st.ElapsedSecs)
	if code == 0 && st.Errored > 0 {
		code = 1
	}
	return code
}

// workerSummary prints one worker's totals and table counters in
// opacheck's summary format.
func workerSummary(errW io.Writer, name string, s dist.RunStats, shared bool) {
	fmt.Fprintf(errW, "otmd: worker %s: %d shards, %d histories: %d opaque, %d non-opaque, %d errors; %d search nodes\n",
		name, s.Shards, s.Histories, s.Opaque, s.NonOpaque, s.Errored, s.Nodes)
	printTables(errW, name, s.Search, shared)
}

func printTables(errW io.Writer, name string, stats core.Stats, shared bool) {
	if shared {
		fmt.Fprintf(errW, "otmd: worker %s shared tables: %d states interned (%d object atoms), %d memo entries (%d hits, %d misses), %d transitions cached (%d hits), %d rebuilds\n",
			name, stats.States, stats.Atoms, stats.MemoEntries, stats.MemoHits, stats.MemoMisses, stats.TransMisses, stats.TransHits, stats.Flushes)
		return
	}
	fmt.Fprintf(errW, "otmd: worker %s contexts: %d states interned (%d object atoms), %d memo entries (%d hits), %d transitions cached (%d hits)\n",
		name, stats.States, stats.Atoms, stats.MemoEntries, stats.MemoHits, stats.TransMisses, stats.TransHits)
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "otmd: %v\n", err)
	return 1
}

func logger(verbose bool) func(string, ...any) {
	if !verbose {
		return func(string, ...any) {}
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}
