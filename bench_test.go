package otm

// Benchmarks regenerating the paper's quantitative content (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
// outputs):
//
//	BenchmarkStepsPerOp/*      E9  — Theorem 3 sweep: steps of the
//	                                 decisive read vs k, per engine.
//	BenchmarkFullScan/*        E10 — tightness: Θ(k²) total steps for
//	                                 dstm, Θ(k) for the O(1) engines.
//	BenchmarkThroughput/*      E13 — read-dominated workload comparison.
//	BenchmarkCheckOpacity/*    E1/E2 — the checkers on the paper's
//	                                 figures and on random histories.
//	BenchmarkCheckOpacityBatch/*     — bulk checking of a 1k-history
//	                                 corpus: sequential vs the checkpool
//	                                 workers vs the un-memoized reference.
//	BenchmarkTheorem2          E8  — graph-characterization search.
//
// Step counts are reported via the custom metrics steps/op so the
// asymptotic shapes are visible directly in `go test -bench` output.

import (
	"fmt"
	"sync"
	"testing"

	"otm/internal/bench"
	"otm/internal/checkpool"
	"otm/internal/core"
	"otm/internal/gen"
	"otm/internal/history"
	"otm/internal/monitor"
	"otm/internal/opg"
	"otm/internal/stm"
)

var sweepKs = []int{16, 64, 256, 1024}

// BenchmarkStepsPerOp is experiment E9: for every engine and k, the cost
// in base-object steps of the reader's decisive operation in the
// Theorem 3 scenario (T1 primes k/2 reads, T2 commits a write, T1 reads
// once more). dstm's steps/op grows linearly with k; every other engine
// stays flat.
func BenchmarkStepsPerOp(b *testing.B) {
	for _, e := range bench.Engines() {
		for _, k := range sweepKs {
			b.Run(fmt.Sprintf("%s/k=%d", e.Name, k), func(b *testing.B) {
				var steps int64
				for i := 0; i < b.N; i++ {
					s, err := bench.StepsForNextRead(e, k)
					if err != nil {
						b.Fatal(err)
					}
					steps = s
				}
				b.ReportMetric(float64(steps), "steps/op")
			})
		}
	}
}

// BenchmarkFullScan is experiment E10: total steps of one transaction
// reading all k objects — Θ(k²) for dstm (the paper's "Θ(k²) steps to
// execute a transaction that accesses k objects"), Θ(k) otherwise.
func BenchmarkFullScan(b *testing.B) {
	for _, e := range bench.Engines() {
		for _, k := range sweepKs {
			b.Run(fmt.Sprintf("%s/k=%d", e.Name, k), func(b *testing.B) {
				var steps int64
				for i := 0; i < b.N; i++ {
					s, err := bench.FullScanSteps(e, k)
					if err != nil {
						b.Fatal(err)
					}
					steps = s
				}
				b.ReportMetric(float64(steps), "steps/tx")
			})
		}
	}
}

// BenchmarkThroughput is experiment E13: wall-clock throughput of a
// read-dominated (90% reads) workload, the regime where invisible reads
// pay off, and a write-heavy (50% reads) one, where contention dominates.
func BenchmarkThroughput(b *testing.B) {
	const k = 256
	for _, mix := range []struct {
		name     string
		readFrac float64
	}{
		{"read90", 0.9},
		{"read50", 0.5},
	} {
		for _, e := range bench.Engines() {
			b.Run(fmt.Sprintf("%s/%s", mix.name, e.Name), func(b *testing.B) {
				tm := e.New(k)
				b.RunParallel(func(pb *testing.PB) {
					seed := 0
					for pb.Next() {
						seed++
						ops := gen.MakeWorkload(int64(seed), 1, 8, k, mix.readFrac)[0]
						err := stm.Atomically(tm, func(tx stm.Tx) error {
							for _, op := range ops {
								if op.Read {
									if _, err := tx.Read(op.Obj); err != nil {
										return err
									}
								} else if err := tx.Write(op.Obj, op.Val); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkContentionManagers is the contention-manager ablation: the
// same progressive engine under each policy on a small, hot object set
// (k=8) where conflicts are frequent — the regime where the manager
// choice matters.
func BenchmarkContentionManagers(b *testing.B) {
	const k = 8
	for _, engine := range []string{"dstm", "vstm"} {
		for _, mgr := range bench.Managers() {
			e, err := bench.ManagedEngine(engine, mgr)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(e.Name, func(b *testing.B) {
				tm := e.New(k)
				b.RunParallel(func(pb *testing.PB) {
					seed := 0
					for pb.Next() {
						seed++
						ops := gen.MakeWorkload(int64(seed), 1, 4, k, 0.5)[0]
						err := stm.Atomically(tm, func(tx stm.Tx) error {
							for _, op := range ops {
								if op.Read {
									if _, err := tx.Read(op.Obj); err != nil {
										return err
									}
								} else if err := tx.Write(op.Obj, op.Val); err != nil {
									return err
								}
							}
							return nil
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// fig1 and fig2 are the paper's Figure 1 (non-opaque) and Figure 2
// (opaque) histories.
func fig1() history.History {
	return history.MustParse(
		"w1(x,1) tryC1 C1 r2(x)->1 w3(x,2) w3(y,2) tryC3 C3 r2(y)->2 tryC2 A2")
}

func fig2() history.History {
	return history.History{
		history.Inv(2, "x", "write", 1), history.Ret(2, "x", "write", history.OK),
		history.Inv(2, "y", "write", 2), history.Ret(2, "y", "write", history.OK),
		history.TryC(2),
		history.Inv(1, "x", "read", nil),
		history.Commit(2),
		history.Inv(3, "y", "write", 3),
		history.Ret(1, "x", "read", 1), history.Inv(1, "x", "write", 5),
		history.Ret(3, "y", "write", history.OK),
		history.Ret(1, "x", "write", history.OK), history.Inv(1, "y", "read", nil),
		history.Inv(3, "x", "read", nil),
		history.Ret(1, "y", "read", 2), history.TryC(1),
		history.Ret(3, "x", "read", 1), history.TryC(3),
		history.Abort(1),
		history.Commit(3),
	}
}

// BenchmarkCheckOpacity times the definitional checker on the paper's
// two figures (E1, E2) and on random 5-transaction histories.
func BenchmarkCheckOpacity(b *testing.B) {
	b.Run("figure1", func(b *testing.B) {
		h := fig1()
		for i := 0; i < b.N; i++ {
			if _, err := core.Opaque(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("figure2", func(b *testing.B) {
		h := fig2()
		for i := 0; i < b.N; i++ {
			if _, err := core.Opaque(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random5tx", func(b *testing.B) {
		cfg := gen.Config{Txs: 5, Objs: 3, MaxOps: 3, PStaleRead: 0.3}
		hs := make([]history.History, 64)
		for i := range hs {
			hs[i] = gen.History(cfg, int64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Opaque(hs[i%len(hs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckOpacityBatch times bulk opacity checking of 1000-history
// corpora: the sequential baseline (one core.Check after another on a
// per-corpus-pass SearchContext — the intended batch shape), the same
// work through internal/checkpool at several widths (the
// `opacheck -parallel` path, one context per worker), the shared-table
// variants (`opacheck -parallel -shared`, every worker on one pool-wide
// core.SharedTables), and the per-completion reference engine
// (core.Config.DisableMemo) to expose what the unified interned-state
// search buys. Each run reports nodes/corpus — the search nodes one pass
// over the corpus explores — plus states-interned and memo-hit-rate for
// the context-backed runs, and allocations (b.ReportAllocs, so allocs/op
// appears without -benchmem), making the interning payoff visible
// directly in the bench output: the reduction from lazy commit/abort
// branching, the shared memo, the partial-order reduction, and the
// allocation-free memo/transition keys. The shared-vs-parallel contrast
// at equal widths shows what pooling the tables buys: states-interned
// drops from ~×workers back to the single-context count. The
// "commitpending" corpus (most transactions left commit-pending) is the
// regime the unified engine targets: the reference pays for 2^k
// completions there. Sequential must report strictly fewer nodes than
// reference at far lower time; see README.md's Performance section for
// recorded before/after numbers.
//
// The "symmetric" corpus — pinned by testdata/corpora/symmetric.json,
// clone-heavy histories of interchangeable transactions — is the regime
// the symmetry reduction targets. Sequential runs additionally report
// sym-prunes/corpus and legal-skips/corpus (candidate placements skipped
// by the symmetry reduction and the incremental legality watch), and the
// nosym variant reruns the sequential configuration with the symmetry
// reduction disabled (core.Config.DisableSym): nodes/corpus of
// symmetric/nosym over symmetric/sequential is the measured reduction
// factor CI asserts on, and on the asymmetric corpora the two variants
// must agree — the reduction never adds nodes.
func BenchmarkCheckOpacityBatch(b *testing.B) {
	memoHitRate := func(s core.Stats) float64 {
		if s.MemoHits+s.MemoMisses == 0 {
			return 0
		}
		return float64(s.MemoHits) / float64(s.MemoHits+s.MemoMisses)
	}
	symSpec, err := gen.LoadSpec("testdata/corpora/symmetric.json")
	if err != nil {
		b.Fatal(err)
	}
	for _, corpus := range []struct {
		name string
		hs   []history.History
	}{
		{"mixed", gen.Corpus(gen.Config{Txs: 6, Objs: 3, MaxOps: 4, PStaleRead: 0.3}, 1000, 1)},
		{"commitpending", gen.Corpus(gen.Config{Txs: 6, Objs: 3, MaxOps: 4, PStaleRead: 0.3, PLeaveLive: 0.8}, 1000, 1)},
		{"symmetric", symSpec.Corpus()},
	} {
		hs := corpus.hs
		sequential := func(disableSym bool) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				nodes := 0
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					ctx := core.NewSearchContext()
					cfg := core.Config{Context: ctx, DisableSym: disableSym}
					nodes = 0
					for _, h := range hs {
						res, err := core.Check(h, cfg)
						if err != nil {
							b.Fatal(err)
						}
						nodes += res.Nodes
					}
					stats = ctx.Stats()
				}
				b.ReportMetric(float64(nodes), "nodes/corpus")
				b.ReportMetric(float64(stats.States), "states-interned")
				b.ReportMetric(memoHitRate(stats), "memo-hit-rate")
				b.ReportMetric(float64(stats.SymPrunes), "sym-prunes/corpus")
				b.ReportMetric(float64(stats.LegalSkips), "legal-skips/corpus")
			}
		}
		b.Run(corpus.name+"/sequential", sequential(false))
		b.Run(corpus.name+"/nosym", sequential(true))
		b.Run(corpus.name+"/reference", func(b *testing.B) {
			b.ReportAllocs()
			cfg := core.Config{DisableMemo: true}
			nodes := 0
			for i := 0; i < b.N; i++ {
				nodes = 0
				for _, h := range hs {
					res, err := core.Check(h, cfg)
					if err != nil {
						b.Fatal(err)
					}
					nodes += res.Nodes
				}
			}
			b.ReportMetric(float64(nodes), "nodes/corpus")
		})
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/parallel%d", corpus.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				nodes := 0
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					stats = core.Stats{}
					p := checkpool.New(checkpool.Options{Workers: workers, Stats: &stats})
					nodes = 0
					for _, v := range p.CheckAll(hs) {
						if v.Err != nil {
							b.Fatal(v.Err)
						}
						nodes += v.Result.Nodes
					}
				}
				b.ReportMetric(float64(nodes), "nodes/corpus")
				b.ReportMetric(float64(stats.States), "states-interned")
				b.ReportMetric(memoHitRate(stats), "memo-hit-rate")
			})
			b.Run(fmt.Sprintf("%s/shared%d", corpus.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				nodes := 0
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					stats = core.Stats{}
					p := checkpool.New(checkpool.Options{
						Workers:       workers,
						SharedContext: core.NewSharedTables(),
						Stats:         &stats,
					})
					nodes = 0
					for _, v := range p.CheckAll(hs) {
						if v.Err != nil {
							b.Fatal(v.Err)
						}
						nodes += v.Result.Nodes
					}
				}
				b.ReportMetric(float64(nodes), "nodes/corpus")
				b.ReportMetric(float64(stats.States), "states-interned")
				b.ReportMetric(memoHitRate(stats), "memo-hit-rate")
			})
		}
	}
}

// BenchmarkTheorem2 times the graph-characterization search (E8) on the
// paper's figures with the initializing transaction added.
func BenchmarkTheorem2(b *testing.B) {
	for name, h := range map[string]history.History{
		"figure1": opg.WithInit(fig1(), 0),
		"figure2": opg.WithInit(fig2(), 0),
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := opg.CheckTheorem2(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorOverhead measures what live opacity monitoring costs
// relative to the bare engine: one benchmark iteration is a fixed
// concurrent episode (4 goroutines × 25 transactions of 6 operations
// over 8 registers on tl2) run with monitoring off, with recording
// only, with a synchronous monitor (checks inside every recorded event,
// under the recorder mutex) and with an asynchronous one (checks on a
// drain goroutine, Block backpressure). Episodes are fixed-size because
// the per-event cost of prefix checking grows with history length —
// open-ended b.N transactions on one session would measure the history
// size, not the mode. commits/s makes the off/sync/async throughput
// comparison directly readable in the bench output; monitor-nodes and
// monitor-fastpath show how much verification the session actually did
// (fast-path revalidations vastly outnumbering searches is what keeps
// sync mode affordable).
func BenchmarkMonitorOverhead(b *testing.B) {
	const k, goroutines, txPerG, opsPerTx = 8, 4, 25, 6
	episode := func(b *testing.B, tm stm.TM) {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for t := 0; t < txPerG; t++ {
					ops := gen.MakeWorkload(int64(g*txPerG+t), 1, opsPerTx, k, 0.7)[0]
					err := stm.Atomically(tm, func(tx stm.Tx) error {
						for _, op := range ops {
							if op.Read {
								if _, err := tx.Read(op.Obj); err != nil {
									return err
								}
							} else if err := tx.Write(op.Obj, op.Val); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}
	commitsPerSec := func(b *testing.B) {
		b.ReportMetric(float64(b.N*goroutines*txPerG)/b.Elapsed().Seconds(), "commits/s")
	}

	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			episode(b, NewTL2(k))
		}
		commitsPerSec(b)
	})
	b.Run("recorded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			episode(b, stm.NewRecorder(NewTL2(k)))
		}
		commitsPerSec(b)
	})
	for _, mode := range []monitor.Mode{monitor.Sync, monitor.Async} {
		b.Run(mode.String(), func(b *testing.B) {
			nodes, fast := 0, 0
			for i := 0; i < b.N; i++ {
				rec := stm.NewRecorder(NewTL2(k))
				sess := monitor.Attach(rec, monitor.Options{Mode: mode})
				episode(b, rec)
				v := sess.Close()
				if v.Status != monitor.StatusOpaque {
					b.Fatalf("monitored tl2 episode not certified: %+v", v)
				}
				nodes, fast = v.Nodes, v.FastPath
			}
			commitsPerSec(b)
			b.ReportMetric(float64(nodes), "monitor-nodes")
			b.ReportMetric(float64(fast), "monitor-fastpath")
		})
	}
}

// BenchmarkMonitorSoak measures a long-running monitored session with
// and without checkpointed truncation. The workload is bursts of four
// overlapping committed transactions (every burst boundary quiescent),
// streamed through a Sync session. With truncation armed the per-event
// cost is flat in session age; without it each witness revalidation
// replays the whole history, so the untruncated variant runs far fewer
// events and still reports a much higher ns/event. cmd/tmbench -soak is
// the full-trajectory version of this benchmark.
func BenchmarkMonitorSoak(b *testing.B) {
	burst := func(next *int) history.History {
		const width = 4
		evs := make(history.History, 0, 6*width)
		base := *next
		*next += width
		for i := 0; i < width; i++ {
			tx := history.TxID(base + i)
			evs = append(evs, history.Inv(tx, history.ObjID(fmt.Sprintf("x%d", i)), "write", base+i))
		}
		for i := 0; i < width; i++ {
			tx := history.TxID(base + i)
			obj := history.ObjID(fmt.Sprintf("x%d", i))
			evs = append(evs,
				history.Ret(tx, obj, "write", history.OK),
				history.Inv(tx, obj, "read", nil),
				history.Ret(tx, obj, "read", base+i))
		}
		for i := 0; i < width; i++ {
			tx := history.TxID(base + i)
			evs = append(evs, history.TryC(tx), history.Commit(tx))
		}
		return evs
	}
	run := func(b *testing.B, events, truncAfter int) {
		total := 0
		var last monitor.Verdict
		for i := 0; i < b.N; i++ {
			sess := monitor.New(monitor.Options{TruncateAfterEvents: truncAfter})
			next := 1
			for n := 0; n < events; {
				for _, ev := range burst(&next) {
					last = sess.Append(ev)
					n++
				}
			}
			if last.Status != monitor.StatusOpaque {
				b.Fatalf("soak workload not certified: %+v", last)
			}
			total += last.Events
			sess.Close()
		}
		b.ReportMetric(b.Elapsed().Seconds()/float64(total)*1e9, "ns/event")
		b.ReportMetric(float64(last.LiveEvents), "live-events")
		b.ReportMetric(float64(last.Checkpoints), "checkpoints")
	}
	b.Run("trunc-20k", func(b *testing.B) { run(b, 20000, 256) })
	// Untruncated monitoring is O(history) per event: 2k events is
	// already ~seconds of work, so the session-age contrast with the
	// 10× longer truncated run is visible directly in ns/event.
	b.Run("notrunc-2k", func(b *testing.B) { run(b, 2000, 0) })
}

// BenchmarkRecorder measures the overhead of history recording on a
// sequential workload (diagnostic; not a paper experiment).
func BenchmarkRecorder(b *testing.B) {
	for _, recorded := range []bool{false, true} {
		name := "bare"
		if recorded {
			name = "recorded"
		}
		b.Run(name, func(b *testing.B) {
			var tm stm.TM = NewTL2(64)
			if recorded {
				tm = stm.NewRecorder(NewTL2(64))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := stm.Atomically(tm, func(tx stm.Tx) error {
					if _, err := tx.Read(i % 64); err != nil {
						return err
					}
					return tx.Write((i+1)%64, i)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
